"""Data-locality bench (§VI future work made measurable).

Decorates a workload's root tasks with located input data and compares
locality-aware placement (transfer cost inside the EFT objective) against
locality-blind placement of the *same* workload:

* the aware planner places a strictly larger fraction of input-bearing
  tasks on their data node;
* the aware run moves fewer bytes (less total transfer time);
* the aware run's makespan is no worse.
"""

from __future__ import annotations

import pytest

from repro.config import SimConfig
from repro.core import DSPPreemption, DSPScheduler, HeuristicScheduler
from repro.experiments import build_workload_for_cluster, cluster_profile, default_config
from repro.locality import locality_fraction, with_random_inputs
from repro.sim import SimEngine

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)


@pytest.mark.benchmark(group="locality")
def test_locality_aware_vs_blind(benchmark):
    cluster = cluster_profile("cluster")
    config = default_config()
    workload = build_workload_for_cluster(
        10, cluster, scale=30.0, seed=23, config=config, demand_fraction=0.8
    )
    jobs = with_random_inputs(
        workload.jobs, cluster, rng=5, fraction=0.8,
        input_mb_range=(2000.0, 20000.0),
    )

    def run():
        results = {}
        for label, aware in (("aware", True), ("blind", False)):
            scheduler = HeuristicScheduler(cluster, config, locality_aware=aware)
            plan = scheduler.schedule(list(jobs))
            frac = locality_fraction(jobs, plan)
            scheduler.reset()
            engine = SimEngine(
                cluster, jobs, scheduler, preemption=DSPPreemption(config),
                dsp_config=config, sim_config=SIM,
            )
            m = engine.run()
            results[label] = (frac, m)
            print(f"\n  {label:5s}: local placement {frac:5.1%}  "
                  f"transfer {m.total_transfer_time:8.1f} s  "
                  f"makespan {m.makespan:9.1f} s")
        aware_frac, aware_m = results["aware"]
        blind_frac, blind_m = results["blind"]
        assert aware_frac > blind_frac
        assert aware_m.total_transfer_time < blind_m.total_transfer_time
        assert aware_m.makespan <= blind_m.makespan * 1.05

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="locality")
def test_checkpoint_interval_cost(benchmark):
    """Companion ablation: coarser checkpoints make preemptions costlier
    (work since the last checkpoint is redone)."""
    cluster = cluster_profile("cluster")
    base = default_config()
    workload = build_workload_for_cluster(
        10, cluster, scale=30.0, seed=29, config=base, demand_fraction=0.8
    )

    def run():
        rows = []
        for interval in (0.0, 30.0, 120.0):
            cfg = base.replace(checkpoint_interval=interval)
            engine = SimEngine(
                cluster, workload.jobs,
                DSPScheduler(cluster, cfg, ilp_task_limit=0),
                preemption=DSPPreemption(cfg), dsp_config=cfg, sim_config=SIM,
            )
            m = engine.run()
            rows.append((interval, m.makespan, m.num_preemptions))
            print(f"\n  checkpoint every {interval:5.0f}s: "
                  f"makespan {m.makespan:9.1f}  preemptions {m.num_preemptions}")
        # Perfect checkpointing is never slower than the coarsest interval.
        assert rows[0][1] <= rows[-1][1] * 1.02

    benchmark.pedantic(run, rounds=1, iterations=1)
