"""Fault-tolerance bench (§VI future work made measurable).

Runs DSP on a fixed workload with increasing failure pressure (MTBF
sweep) and with stragglers, asserting the recovery properties:

* every task completes under every fault plan (no lost work, no deadlock);
* degradation is graceful — makespan grows with failure pressure but
  stays within a small multiple of the fault-free run;
* stragglers hurt less than full failures of the same node.
"""

from __future__ import annotations

import pytest

from repro.config import ResilienceConfig, SimConfig
from repro.core import DSPSystem
from repro.experiments import build_workload_for_cluster, cluster_profile, default_config
from repro.sim import FaultEvent, FaultKind, SimEngine, random_fault_plan

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)


def _run(cluster, workload, config, faults, resilience=None):
    system = DSPSystem.build(cluster, config)
    engine = SimEngine(
        cluster, workload.jobs, system.scheduler, preemption=system.preemption,
        dsp_config=config, sim_config=SIM, faults=faults, resilience=resilience,
    )
    return engine.run()


@pytest.fixture(scope="module")
def setup():
    cluster = cluster_profile("cluster")
    config = default_config()
    workload = build_workload_for_cluster(
        10, cluster, scale=30.0, seed=17, config=config, demand_fraction=0.8
    )
    return cluster, config, workload


@pytest.mark.benchmark(group="faults")
def test_failure_pressure_sweep(benchmark, setup):
    cluster, config, workload = setup

    def run():
        baseline = _run(cluster, workload, config, None)
        rows = [("fault-free", baseline.makespan, 0, 0, 0.0)]
        for mtbf in (8000.0, 3000.0):
            plan = random_fault_plan(
                cluster, horizon=baseline.makespan * 2, rng=3,
                mtbf=mtbf, mttr=300.0,
            )
            m = _run(cluster, workload, config, plan)
            rows.append((f"mtbf={mtbf:.0f}s", m.makespan,
                         m.num_node_failures, m.num_task_reassignments,
                         m.lost_work_mi))
            assert m.tasks_completed == workload.num_tasks
            # Graceful degradation: bounded blow-up even under heavy faults.
            assert m.makespan < 3.0 * baseline.makespan
        print()
        for label, mk, fails, moved, lost in rows:
            print(f"  {label:16s} makespan={mk:9.1f}  failures={fails:3d}  "
                  f"reassigned={moved:4d}  lost={lost/1e6:7.2f}M MI")
        # More failure pressure should not make things faster.
        assert rows[-1][1] >= rows[0][1] * 0.95

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="faults")
def test_resilience_on_vs_off(benchmark, setup):
    """The resilience layer under transient task-failure pressure: same
    seed-fixed plan, with and without retries/speculation/quarantine."""
    cluster, config, workload = setup
    resilience = ResilienceConfig(
        max_attempts=12, backoff_base=5.0, backoff_cap=60.0,
        timeout_factor=20.0, health_alpha=0.6,
        quarantine_threshold=0.5, quarantine_duration=600.0,
    )

    def run():
        baseline = _run(cluster, workload, config, None)
        plan = random_fault_plan(
            cluster, horizon=baseline.makespan * 2, rng=3,
            mtbf=3000.0, mttr=300.0, task_fail_rate=4.0,
        )
        off = _run(cluster, workload, config, plan)
        on = _run(cluster, workload, config, plan, resilience=resilience)
        print()
        for label, m in (("resilience-off", off), ("resilience-on", on)):
            print(f"  {label:15s} makespan={m.makespan:9.1f}  "
                  f"lost={m.lost_work_mi/1e6:7.2f}M MI  "
                  f"task-fails={m.num_task_failures:3d}  "
                  f"retries={m.num_retries:3d}  "
                  f"quarantines={m.num_quarantines:3d}  "
                  f"spec={m.num_speculative_launches}/{m.num_speculative_wins}")
        assert off.tasks_completed == workload.num_tasks
        assert on.tasks_completed == workload.num_tasks
        # The acceptance bar: strictly less work destroyed with the layer on.
        assert on.lost_work_mi < off.lost_work_mi

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="faults")
def test_straggler_vs_failure(benchmark, setup):
    cluster, config, workload = setup
    victim = cluster.nodes[0].node_id

    def run():
        clean = _run(cluster, workload, config, None)
        horizon = clean.makespan
        straggle = [
            FaultEvent(horizon * 0.1, victim, FaultKind.SLOWDOWN, factor=0.3),
            FaultEvent(horizon * 0.9, victim, FaultKind.RESTORE),
        ]
        fail = [
            FaultEvent(horizon * 0.1, victim, FaultKind.FAILURE),
            FaultEvent(horizon * 0.9, victim, FaultKind.RECOVERY),
        ]
        m_straggle = _run(cluster, workload, config, straggle)
        m_fail = _run(cluster, workload, config, fail)
        print(f"\n  clean     {clean.makespan:9.1f}")
        print(f"  straggler {m_straggle.makespan:9.1f}")
        print(f"  failure   {m_fail.makespan:9.1f} "
              f"(reassigned {m_fail.num_task_reassignments})")
        assert m_straggle.tasks_completed == workload.num_tasks
        assert m_fail.tasks_completed == workload.num_tasks
        # The classic straggler pathology, reproduced: a *dead* node's work
        # is reassigned and absorbed by the rest of the cluster, while a
        # *slow* node keeps attracting tasks and runs them at 0.3x — so the
        # straggler hurts at least as much as the outright failure.
        assert m_straggle.makespan >= m_fail.makespan * 0.95

    benchmark.pedantic(run, rounds=1, iterations=1)
