"""Reproduction of Fig. 7: preemption-method comparison on EC2 (E7–E10).

Same four panels as Fig. 6 but on the smaller EC2 profile (30 → 6 nodes).
The paper's two cross-figure observations are asserted too:

* waiting times on EC2 exceed the real-cluster ones (fewer nodes → fewer
  chances to find an idle node);
* preemption counts on EC2 exceed the real-cluster ones (more tasks per
  node → preemption more likely).
"""

from __future__ import annotations

import pytest

from repro.experiments import check_order, fig6_fig7_preemption, figure_report

JOB_COUNTS = (15, 30, 45)  # the cross-figure comparison needs both runs


@pytest.fixture(scope="module")
def fig_ec2():
    return fig6_fig7_preemption("ec2", job_counts=JOB_COUNTS, scale=20.0, seed=7)


@pytest.fixture(scope="module")
def fig_cluster():
    return fig6_fig7_preemption("cluster", job_counts=JOB_COUNTS, scale=20.0, seed=7)


def _totals(fig, metric: str) -> dict[str, float]:
    return {name: sum(series) for name, series in fig.metric(metric).items()}


@pytest.mark.benchmark(group="fig7")
def test_fig7a_disorders(benchmark, fig_ec2):
    def check():
        print()
        print(figure_report(fig_ec2, ("num_disorders",)))
        totals = _totals(fig_ec2, "num_disorders")
        assert totals["DSP"] == 0
        assert totals["SRPT"] >= max(totals["Natjam"], totals["Amoeba"]) * 0.9

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig7")
def test_fig7b_throughput(benchmark, fig_ec2):
    def check():
        print()
        print(figure_report(fig_ec2, ("throughput_tasks_per_ms",)))
        totals = _totals(fig_ec2, "throughput_tasks_per_ms")
        assert totals["SRPT"] == min(totals.values())
        assert totals["DSP"] >= max(totals["Natjam"], totals["Amoeba"]) * 0.98

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig7")
def test_fig7c_waiting_exceeds_cluster(benchmark, fig_ec2, fig_cluster):
    def check():
        print()
        print(figure_report(fig_ec2, ("avg_job_waiting",)))
        ec2 = _totals(fig_ec2, "avg_job_waiting")
        cl = _totals(fig_cluster, "avg_job_waiting")
        # DSP variants lowest on EC2 as well.
        dsp_worst = max(ec2["DSP"], ec2["DSPW/oPP"])
        for baseline in ("Natjam", "Amoeba", "SRPT"):
            assert dsp_worst <= ec2[baseline] * 1.05, baseline
        # §V-B: EC2 waiting > real-cluster waiting (fewer nodes).
        for name in ec2:
            assert ec2[name] > cl[name], name

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig7")
def test_fig7d_preemptions_exceed_cluster(benchmark, fig_ec2, fig_cluster):
    def check():
        print()
        print(figure_report(fig_ec2, ("num_preemptions",)))
        ec2 = _totals(fig_ec2, "num_preemptions")
        cl = _totals(fig_cluster, "num_preemptions")
        assert check_order(
            ec2, ["DSP", "DSPW/oPP", "Natjam", "Amoeba", "SRPT"], tolerance=0.15
        ) == []
        # §V-B: preemption is more likely on EC2 because each node carries
        # more tasks — compare preemptions per node (6 EC2 vs 10 cluster).
        per_node_ec2 = sum(ec2.values()) / fig_ec2.meta["nodes"]
        per_node_cluster = sum(cl.values()) / fig_cluster.meta["nodes"]
        assert per_node_ec2 > per_node_cluster

    benchmark.pedantic(check, rounds=1, iterations=1)
