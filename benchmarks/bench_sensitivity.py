"""2D parameter-sensitivity bench: the (γ, ρ) interaction grid.

γ shapes how strongly dependency structure dominates Eq. 12 priorities;
ρ gates how large a priority gap must be before PP lets a preemption
fire.  The grid shows their interaction and asserts the structural
expectations:

* along every γ row, preemptions fall (weakly) as ρ tightens;
* DSP stays dependency-safe (zero disorders) everywhere on the grid.
"""

from __future__ import annotations

import pytest

from repro.experiments import heatmap, sweep_grid


@pytest.mark.benchmark(group="sensitivity")
def test_gamma_rho_grid(benchmark):
    def run():
        grid = sweep_grid(
            "gamma", (0.2, 0.5, 0.8),
            "rho", (1.1, 2.0, 5.0),
            num_jobs=10, scale=30.0, seed=13,
        )
        print()
        print(heatmap(grid, "num_preemptions", invert=True))
        print()
        print(heatmap(grid, "throughput_tasks_per_ms"))
        pre = grid.metric("num_preemptions")
        for r, row in enumerate(pre):
            for a, b in zip(row, row[1:]):
                assert b <= a * 1.10, (
                    f"row gamma={grid.row_values[r]}: preemptions should not "
                    f"grow as rho tightens ({row})"
                )
        dis = grid.metric("num_disorders")
        assert all(v == 0 for row in dis for v in row)

    benchmark.pedantic(run, rounds=1, iterations=1)
