"""Parameter-sensitivity ablations (A1) — the paper's §VI future work.

Sweeps the four DSP-shaping parameters on a fixed workload and asserts the
directional effects the design predicts:

* **ρ** (PP threshold): raising ρ monotonically reduces preemptions — the
  whole point of the normalized-priority filter;
* **δ** (queue fraction): widening the preempting window cannot reduce the
  number of preemption opportunities;
* **τ** (starvation override): the paper's literal 0.05 s value floods the
  urgent pass — preemptions at τ=0.05 far exceed τ=120 (the deviation
  DESIGN.md documents, made measurable);
* **γ** (level boost): varies the priority scale without breaking runs.
"""

from __future__ import annotations

import pytest

from repro.experiments import ablation_report, sweep_parameter

KW = dict(num_jobs=15, scale=30.0, seed=11)


@pytest.mark.benchmark(group="ablations")
def test_ablation_rho(benchmark):
    def check():
        results = sweep_parameter("rho", (1.1, 2.0, 5.0), **KW)
        print()
        print(ablation_report("rho", results))
        pre = {v: m.num_preemptions for v, m in results.items()}
        assert pre[5.0] <= pre[2.0] <= pre[1.1]

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablations")
def test_ablation_delta(benchmark):
    def check():
        results = sweep_parameter("delta", (0.1, 0.35, 0.8), **KW)
        print()
        print(ablation_report("delta", results))
        for m in results.values():
            assert m.num_disorders == 0  # DSP stays dependency-safe

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablations")
def test_ablation_tau(benchmark):
    def check():
        results = sweep_parameter("tau", (0.05, 120.0), **KW)
        print()
        print(ablation_report("tau", results))
        # The paper's literal τ makes every overdue task urgent: far more
        # preemptions than the calibrated default.
        assert results[0.05].num_preemptions > results[120.0].num_preemptions

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="ablations")
def test_ablation_gamma(benchmark):
    def check():
        results = sweep_parameter("gamma", (0.1, 0.5, 0.9), **KW)
        print()
        print(ablation_report("gamma", results))
        for m in results.values():
            assert m.num_disorders == 0
            assert m.tasks_completed > 0

    benchmark.pedantic(check, rounds=1, iterations=1)
