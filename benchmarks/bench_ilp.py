"""ILP benchmarks (A2): exact Eq. 3–11 solves vs the heuristic relaxation.

Measures HiGHS solve time on the largest exact-tractable instances and
quantifies the heuristic's optimality gap — the quantitative backing for
DESIGN.md's claim that the list scheduler is a faithful stand-in for the
rounded relaxation at cluster scale.
"""

from __future__ import annotations

import pytest

from repro.cluster import uniform_cluster
from repro.core import HeuristicScheduler, ILPScheduler, verify_schedule
from repro.dag import Job, layered_random_dag


def _instance(num_tasks: int, seed: int) -> Job:
    tasks = layered_random_dag(
        "J", num_tasks, rng=seed,
        size_sampler=lambda g: float(g.uniform(500.0, 2000.0)),
    )
    return Job.from_tasks("J", tasks, deadline=1e6)


@pytest.fixture(scope="module")
def cluster():
    return uniform_cluster(3, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


@pytest.mark.benchmark(group="ilp")
@pytest.mark.parametrize("num_tasks", [6, 10, 14])
def test_exact_ilp_solve_time(benchmark, cluster, num_tasks):
    """Wall-clock of one exact solve at growing instance sizes."""
    job = _instance(num_tasks, seed=21)
    solver = ILPScheduler(cluster)

    result = benchmark.pedantic(
        lambda: solver.solve([job], time_limit=60.0), rounds=1, iterations=1
    )
    assert verify_schedule(result.schedule, [job], cluster) == []
    print(f"\nexact makespan ({num_tasks} tasks): {result.makespan:.3f} s")


@pytest.mark.benchmark(group="ilp")
def test_heuristic_vs_exact_gap(benchmark, cluster):
    """Optimality gap of the list scheduler on exact-solvable instances."""

    def run() -> float:
        worst_gap = 0.0
        for seed in (1, 2, 3, 4, 5):
            job = _instance(10, seed)
            exact = ILPScheduler(cluster).solve([job], time_limit=60.0)
            heur = HeuristicScheduler(cluster).schedule([job])
            gap = heur.makespan / exact.makespan
            worst_gap = max(worst_gap, gap)
            print(
                f"\nseed {seed}: exact {exact.makespan:8.2f}  "
                f"heuristic {heur.makespan:8.2f}  ratio {gap:.3f}"
            )
        return worst_gap

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    # List scheduling with precedence is 2-approximate in theory; in
    # practice on these instances it stays well under that.
    assert worst <= 2.0


@pytest.mark.benchmark(group="ilp")
def test_relaxation_round_trip(benchmark, cluster):
    """Paper's relax-and-round path: LP relaxation + repair is feasible and
    close to exact."""
    job = _instance(10, seed=33)
    solver = ILPScheduler(cluster)

    def run():
        return solver.solve([job], relax=True)

    relaxed = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = solver.solve([job], time_limit=60.0)
    assert verify_schedule(relaxed.schedule, [job], cluster) == []
    assert relaxed.makespan <= 2.5 * exact.makespan
    print(f"\nexact {exact.makespan:.2f}  rounded-relaxation {relaxed.makespan:.2f}")
