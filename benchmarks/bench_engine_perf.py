"""Engine performance micro-benchmarks.

The hpc-parallel guides' first rule: measure before optimizing.  These
benches track the simulator's own speed so a future "optimization" (or
regression) is visible:

* end-to-end run throughput in simulated-tasks per wall-second;
* offline planning throughput (heuristic list scheduler) in tasks/s;
* epoch cost with a non-trivial preemption policy attached;
* the kernel hot path at fig-8 scale — epoch ticks per wall-second with
  the incremental scheduling core (struct-of-arrays array core +
  delta-driven view cache) on vs the always-recompute object path
  (results must be identical; the numbers land in ``BENCH_engine.json``
  at the repo root, and ``scripts/bench_guard.py`` re-runs the same
  recipe in CI to catch regressions against that committed baseline).

Unlike the figure benches these use multiple rounds — the point *is* the
timing distribution.

Run directly for a human-readable summary (including the score-cache hit
rate), or with ``--profile`` for a cProfile breakdown of the epoch loop::

    PYTHONPATH=src python benchmarks/bench_engine_perf.py [--profile]
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.cluster import palmetto_cluster
from repro.config import SimConfig
from repro.core import DSPPreemption, DSPScheduler, HeuristicScheduler
from repro.experiments import build_workload_for_cluster, default_config

CLUSTER = palmetto_cluster(10)
CONFIG = default_config()
WORKLOAD = build_workload_for_cluster(
    10, CLUSTER, scale=30.0, seed=41, config=CONFIG, demand_fraction=0.8
)
SIM = SimConfig(epoch=60.0, scheduling_period=300.0)

#: Fig-8's smallest sweep point (50 jobs at scale 40) — big enough that
#: epoch handling dominates, small enough for a multi-round benchmark.
FIG8_JOBS = 50
FIG8_SCALE = 40.0
#: The hot-path recipe ticks the epoch loop at 5 s (vs the end-to-end
#: benches' 60 s) so the measured wall time is dominated by the code the
#: bench is about — per-tick scheduling work — rather than by the fixed
#: per-run costs (scheduling rounds, arrival/finish handling) that are
#: identical on both sides and would otherwise cap the observable ratio.
FIG8_SIM = SimConfig(epoch=5.0, scheduling_period=300.0)
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.mark.benchmark(group="perf")
def test_perf_offline_planning(benchmark):
    """Heuristic list-scheduling throughput (plan tasks/second)."""

    def plan():
        scheduler = HeuristicScheduler(CLUSTER, CONFIG)
        return scheduler.schedule(list(WORKLOAD.jobs))

    result = benchmark(plan)
    assert len(result) == WORKLOAD.num_tasks


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_null_policy(benchmark):
    """Full simulation without preemption: the engine's event-loop floor."""
    from repro.sim import NullPreemption, SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=NullPreemption(), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks


def _fig8_hot_path(incremental: bool, journal_path=None):
    """One DSP-preemption run at fig-8 scale.

    *incremental* toggles the whole incremental scheduling core at once
    (``array_core`` + ``sched_index`` + ``views_cache``) against the
    always-recompute object path; *journal_path* additionally enables
    the write-ahead run journal (the durability overhead the guard
    bounds).  Returns (metrics dict, epoch ticks observed on the bus,
    wall seconds, view rebuilds, scoring-seam-or-None).  This is the
    recipe ``scripts/bench_guard.py`` imports — keep it deterministic
    (fixed seed, no warm-up inside).
    """
    from repro.sim import EpochTick, SimEngine

    workload = build_workload_for_cluster(
        FIG8_JOBS, CLUSTER, scale=FIG8_SCALE, seed=7,
        config=CONFIG, demand_fraction=0.8,
    )
    engine = SimEngine(
        CLUSTER, workload.jobs,
        DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
        preemption=DSPPreemption(CONFIG), dsp_config=CONFIG,
        sim_config=FIG8_SIM.replace(
            views_cache=incremental,
            sched_index=incremental,
            array_core=incremental,
        ),
        journal=journal_path,
    )
    ticks = 0

    def count(_ev):
        nonlocal ticks
        ticks += 1

    engine.runtime.bus.subscribe(EpochTick, count)
    t0 = time.perf_counter()
    metrics = engine.run()
    wall = time.perf_counter() - t0
    assert metrics.tasks_completed == workload.num_tasks
    return (
        metrics.as_dict(), ticks, wall,
        engine.runtime.views.rebuilds, engine.runtime.sched,
    )


def measure_hot_path(rounds: int = 3) -> dict:
    """Best-of-*rounds* hot-path comparison (warm-up run excluded).

    Shared by the pytest bench below and ``scripts/bench_guard.py`` so
    CI measures exactly what the committed baseline recorded.
    """
    _fig8_hot_path(incremental=True)  # warm-up: imports, allocator, JIT-ish caches

    results = {}
    for mode, name in ((True, "incremental"), (False, "recompute")):
        metrics = ticks = rebuilds = index = None
        walls = []
        for _ in range(rounds):
            m, t, wall, rb, idx = _fig8_hot_path(incremental=mode)
            if metrics is None:
                metrics, ticks, rebuilds, index = m, t, rb, idx
            else:
                assert m == metrics, "hot path is not deterministic"
                assert t == ticks
            walls.append(wall)
        results[name] = {
            "metrics": metrics, "ticks": ticks, "wall": min(walls),
            "rebuilds": rebuilds, "index": index,
        }
    return results


def measure_journal_overhead(rounds: int = 6) -> dict:
    """Paired journal-off vs journal-on comparison, incremental core on
    both sides (the production configuration).

    The journal is a pure observer — both runs must produce identical
    RunMetrics — so the only legitimate cost is serialization + buffered
    I/O.  ``scripts/bench_guard.py`` bounds that cost at 10% of epoch
    ticks/s.

    Estimator: off/on runs alternate back to back in pairs, with the
    order *reversed every pair* (off-on, on-off, off-on, ...), and the
    reported ``overhead_fraction`` is the **median of the per-pair
    ratios** ``1 - off_wall/on_wall``.  Back-to-back runs in a pair see
    nearly the same machine state, so each ratio cancels the slow
    CPU-frequency/load drift that makes independent best-of-N
    comparisons swing by double digits on a shared runner; alternating
    the order cancels the residual within-pair drift (always measuring
    one mode second biases the ratio), and the median shrugs off a pair
    that straddled a throttle edge.
    """
    import statistics
    import tempfile

    _fig8_hot_path(incremental=True)  # warm-up

    results = {
        "off": {"metrics": None, "ticks": None, "wall": None,
                "journal_bytes": None},
        "on": {"metrics": None, "ticks": None, "wall": None,
               "journal_bytes": None},
    }
    walls: dict[str, list] = {"off": [], "on": []}
    with tempfile.TemporaryDirectory() as tmp:
        journal = pathlib.Path(tmp) / "bench.journal"
        for pair in range(rounds):
            order = (("off", None), ("on", journal))
            for name, path in (order if pair % 2 == 0 else order[::-1]):
                m, t, wall, _rb, _idx = _fig8_hot_path(
                    incremental=True, journal_path=path
                )
                slot = results[name]
                if slot["metrics"] is None:
                    slot["metrics"], slot["ticks"] = m, t
                else:
                    assert m == slot["metrics"], (
                        "journal run is not deterministic"
                    )
                    assert t == slot["ticks"]
                walls[name].append(wall)
                if path is not None:
                    slot["journal_bytes"] = path.stat().st_size
    for name, slot in results.items():
        slot["wall"] = min(walls[name])
    results["overhead_fraction"] = max(0.0, statistics.median(
        1.0 - off / on for off, on in zip(walls["off"], walls["on"])
    ))
    assert results["on"]["metrics"] == results["off"]["metrics"], (
        "write-ahead journaling changed simulation results"
    )
    assert results["on"]["ticks"] == results["off"]["ticks"]
    return results


@pytest.mark.benchmark(group="perf")
def test_perf_kernel_hot_path_incremental():
    """Epoch ticks per wall-second at fig-8 scale, incremental scheduling
    core on vs always-recompute.

    The core is a pure memoization layer: both runs must produce
    identical RunMetrics and identical tick counts, the view cache and
    priority index must actually engage when on and stay out of the way
    when off.  Wall-clock numbers (for the tracked record — the CI floor
    lives in scripts/bench_guard.py, not here, so local noise can't fail
    the suite) are persisted to BENCH_engine.json.
    """
    results = measure_hot_path(rounds=3)
    inc, rec = results["incremental"], results["recompute"]

    assert inc["metrics"] == rec["metrics"], (
        "incremental scheduling core changed simulation results"
    )
    assert inc["ticks"] == rec["ticks"]
    assert inc["rebuilds"] > 0  # the view cache actually engaged...
    assert rec["rebuilds"] == 0  # ...and the disabled path never builds
    index = inc["index"]
    assert index is not None and index.hits > 0  # the score memo paid off
    assert rec["index"] is None  # recompute path carries no index

    per_s = lambda r: r["ticks"] / r["wall"]  # noqa: E731
    journal = measure_journal_overhead(rounds=6)
    j_off, j_on = journal["off"], journal["on"]
    overhead = journal["overhead_fraction"]
    BENCH_JSON.write_text(json.dumps({
        "benchmark": "kernel_hot_path",
        "scale": {"jobs": FIG8_JOBS, "workload_scale": FIG8_SCALE,
                  "epoch_s": FIG8_SIM.epoch},
        "protocol": {"rounds": 3, "warmup_runs": 1, "stat": "best"},
        "incremental": {
            "epoch_ticks": inc["ticks"],
            "wall_s": round(inc["wall"], 4),
            "epoch_ticks_per_s": round(per_s(inc), 2),
            "view_rebuilds": inc["rebuilds"],
            "index_hits": index.hits,
            "index_misses": index.misses,
            "index_hit_rate": round(index.stats()["hit_rate"], 4),
        },
        "recompute": {
            "epoch_ticks": rec["ticks"],
            "wall_s": round(rec["wall"], 4),
            "epoch_ticks_per_s": round(per_s(rec), 2),
            "view_rebuilds": rec["rebuilds"],
        },
        "journal": {
            "protocol": {"rounds": 6, "interleaved": True,
                         "order": "alternating",
                         "stat": "paired-median"},
            "epoch_ticks_per_s_off": round(per_s(j_off), 2),
            "epoch_ticks_per_s_on": round(per_s(j_on), 2),
            "overhead_fraction": round(overhead, 4),
            "journal_bytes": j_on["journal_bytes"],
            "results_identical": True,
        },
        "speedup": round(per_s(inc) / per_s(rec), 3),
        "results_identical": True,
    }, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_dsp_policy(benchmark):
    """Full simulation with DSP preemption: epoch evaluation included."""
    from repro.sim import SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=DSPPreemption(CONFIG), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks


def _profile_hot_path() -> None:
    """cProfile the incremental hot path (one warmed run), top 25 by
    cumulative time — the first stop when the speedup guard trips."""
    import cProfile
    import pstats

    _fig8_hot_path(incremental=True)  # warm-up
    profiler = cProfile.Profile()
    profiler.enable()
    _fig8_hot_path(incremental=True)
    profiler.disable()
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)


def _print_summary() -> None:
    results = measure_hot_path(rounds=3)
    inc, rec = results["incremental"], results["recompute"]
    per_s = lambda r: r["ticks"] / r["wall"]  # noqa: E731
    stats = inc["index"].stats()
    print(f"kernel hot path ({FIG8_JOBS} jobs, scale {FIG8_SCALE}, "
          f"epoch {FIG8_SIM.epoch:g}s):")
    print(f"  incremental: {inc['ticks']} ticks in {inc['wall']:.3f}s "
          f"({per_s(inc):.1f} ticks/s)")
    print(f"  recompute:   {rec['ticks']} ticks in {rec['wall']:.3f}s "
          f"({per_s(rec):.1f} ticks/s)")
    print(f"  speedup: {per_s(inc) / per_s(rec):.2f}x  "
          f"(results identical: {inc['metrics'] == rec['metrics']})")
    print(f"  score cache: {stats['hits']} hits / {stats['misses']} misses "
          f"(hit rate {stats['hit_rate']:.1%})")


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(
        description="Kernel hot-path benchmark (see module docstring)."
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the incremental hot path instead of timing it",
    )
    if parser.parse_args().profile:
        _profile_hot_path()
    else:
        _print_summary()
