"""Engine performance micro-benchmarks.

The hpc-parallel guides' first rule: measure before optimizing.  These
benches track the simulator's own speed so a future "optimization" (or
regression) is visible:

* end-to-end run throughput in simulated-tasks per wall-second;
* offline planning throughput (heuristic list scheduler) in tasks/s;
* epoch cost with a non-trivial preemption policy attached.

Unlike the figure benches these use multiple rounds — the point *is* the
timing distribution.
"""

from __future__ import annotations

import pytest

from repro.cluster import palmetto_cluster
from repro.config import SimConfig
from repro.core import DSPPreemption, DSPScheduler, HeuristicScheduler
from repro.experiments import build_workload_for_cluster, default_config

CLUSTER = palmetto_cluster(10)
CONFIG = default_config()
WORKLOAD = build_workload_for_cluster(
    10, CLUSTER, scale=30.0, seed=41, config=CONFIG, demand_fraction=0.8
)
SIM = SimConfig(epoch=60.0, scheduling_period=300.0)


@pytest.mark.benchmark(group="perf")
def test_perf_offline_planning(benchmark):
    """Heuristic list-scheduling throughput (plan tasks/second)."""

    def plan():
        scheduler = HeuristicScheduler(CLUSTER, CONFIG)
        return scheduler.schedule(list(WORKLOAD.jobs))

    result = benchmark(plan)
    assert len(result) == WORKLOAD.num_tasks


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_null_policy(benchmark):
    """Full simulation without preemption: the engine's event-loop floor."""
    from repro.sim import NullPreemption, SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=NullPreemption(), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_dsp_policy(benchmark):
    """Full simulation with DSP preemption: epoch evaluation included."""
    from repro.sim import SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=DSPPreemption(CONFIG), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks
