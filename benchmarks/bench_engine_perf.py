"""Engine performance micro-benchmarks.

The hpc-parallel guides' first rule: measure before optimizing.  These
benches track the simulator's own speed so a future "optimization" (or
regression) is visible:

* end-to-end run throughput in simulated-tasks per wall-second;
* offline planning throughput (heuristic list scheduler) in tasks/s;
* epoch cost with a non-trivial preemption policy attached;
* the kernel hot path at fig-8 scale — epoch ticks per wall-second with
  the incremental view cache on vs off (results must be identical; the
  numbers land in ``BENCH_engine.json`` at the repo root).

Unlike the figure benches these use multiple rounds — the point *is* the
timing distribution.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.cluster import palmetto_cluster
from repro.config import SimConfig
from repro.core import DSPPreemption, DSPScheduler, HeuristicScheduler
from repro.experiments import build_workload_for_cluster, default_config

CLUSTER = palmetto_cluster(10)
CONFIG = default_config()
WORKLOAD = build_workload_for_cluster(
    10, CLUSTER, scale=30.0, seed=41, config=CONFIG, demand_fraction=0.8
)
SIM = SimConfig(epoch=60.0, scheduling_period=300.0)

#: Fig-8's smallest sweep point (50 jobs at scale 40) — big enough that
#: epoch handling dominates, small enough for a multi-round benchmark.
FIG8_JOBS = 50
FIG8_SCALE = 40.0
BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


@pytest.mark.benchmark(group="perf")
def test_perf_offline_planning(benchmark):
    """Heuristic list-scheduling throughput (plan tasks/second)."""

    def plan():
        scheduler = HeuristicScheduler(CLUSTER, CONFIG)
        return scheduler.schedule(list(WORKLOAD.jobs))

    result = benchmark(plan)
    assert len(result) == WORKLOAD.num_tasks


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_null_policy(benchmark):
    """Full simulation without preemption: the engine's event-loop floor."""
    from repro.sim import NullPreemption, SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=NullPreemption(), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks


def _fig8_hot_path(views_cache: bool):
    """One DSP-preemption run at fig-8 scale; returns (metrics dict,
    epoch ticks observed on the bus, wall seconds)."""
    from repro.sim import EpochTick, SimEngine

    workload = build_workload_for_cluster(
        FIG8_JOBS, CLUSTER, scale=FIG8_SCALE, seed=7,
        config=CONFIG, demand_fraction=0.8,
    )
    engine = SimEngine(
        CLUSTER, workload.jobs,
        DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
        preemption=DSPPreemption(CONFIG), dsp_config=CONFIG,
        sim_config=SIM.replace(views_cache=views_cache),
    )
    ticks = 0

    def count(_ev):
        nonlocal ticks
        ticks += 1

    engine.runtime.bus.subscribe(EpochTick, count)
    t0 = time.perf_counter()
    metrics = engine.run()
    wall = time.perf_counter() - t0
    assert metrics.tasks_completed == workload.num_tasks
    return metrics.as_dict(), ticks, wall, engine.runtime.views.rebuilds


@pytest.mark.benchmark(group="perf")
def test_perf_kernel_hot_path_views_cache(benchmark):
    """Epoch ticks per wall-second at fig-8 scale, view cache on vs off.

    The cache is a pure memoization: both runs must produce identical
    RunMetrics and identical tick counts.  Wall-clock numbers (for the
    tracked record, not an assertion — single-digit-percent swings are
    noise at this scale) are persisted to BENCH_engine.json.
    """
    cached = benchmark.pedantic(
        lambda: _fig8_hot_path(views_cache=True), rounds=3, iterations=1
    )
    uncached = _fig8_hot_path(views_cache=False)

    m_on, ticks_on, wall_on, rebuilds_on = cached
    m_off, ticks_off, wall_off, rebuilds_off = uncached
    assert m_on == m_off, "views_cache changed simulation results"
    assert ticks_on == ticks_off
    assert rebuilds_on > 0  # the cache actually engaged...
    assert rebuilds_off == 0  # ...and the disabled path never builds

    BENCH_JSON.write_text(json.dumps({
        "benchmark": "kernel_hot_path",
        "scale": {"jobs": FIG8_JOBS, "workload_scale": FIG8_SCALE,
                  "epoch_s": SIM.epoch},
        "views_cache_on": {
            "epoch_ticks": ticks_on,
            "wall_s": round(wall_on, 4),
            "epoch_ticks_per_s": round(ticks_on / wall_on, 2),
            "view_rebuilds": rebuilds_on,
        },
        "views_cache_off": {
            "epoch_ticks": ticks_off,
            "wall_s": round(wall_off, 4),
            "epoch_ticks_per_s": round(ticks_off / wall_off, 2),
            "view_rebuilds": rebuilds_off,
        },
        "results_identical": True,
    }, indent=2) + "\n")


@pytest.mark.benchmark(group="perf")
def test_perf_end_to_end_dsp_policy(benchmark):
    """Full simulation with DSP preemption: epoch evaluation included."""
    from repro.sim import SimEngine

    def run():
        engine = SimEngine(
            CLUSTER, WORKLOAD.jobs,
            DSPScheduler(CLUSTER, CONFIG, ilp_task_limit=0),
            preemption=DSPPreemption(CONFIG), dsp_config=CONFIG, sim_config=SIM,
        )
        return engine.run()

    m = benchmark.pedantic(run, rounds=3, iterations=1)
    assert m.tasks_completed == WORKLOAD.num_tasks
