"""Reproduction of Fig. 8: DSP scalability (E11, E12).

The paper sweeps 500→2500 jobs (here ÷10: 50→250) on both testbeds and
observes that

* (a) makespan grows with the job count but *sub-linearly* — it "does not
  change dramatically when the number of jobs becomes very large";
* (b) throughput decays gradually and flattens.

Both assertions are encoded: the last doubling of the job count must grow
makespan by clearly less than 2x, and throughput's successive relative
drops must shrink.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig8_scalability, figure_report

JOB_COUNTS = (50, 100, 150, 200, 250)


@pytest.fixture(scope="module")
def fig():
    return fig8_scalability(job_counts=JOB_COUNTS, scale=40.0, seed=7)


@pytest.mark.benchmark(group="fig8")
def test_fig8a_makespan(benchmark, fig):
    def check():
        print()
        print(figure_report(fig, ("makespan",)))
        for label, series in fig.metric("makespan").items():
            # Monotone growth overall...
            assert series[-1] > series[0], label
            # ...but sub-linear: 5x jobs => well under 5x makespan.
            assert series[-1] < 5.0 * series[0], label

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.benchmark(group="fig8")
def test_fig8b_throughput(benchmark, fig):
    def check():
        print()
        print(figure_report(fig, ("throughput_tasks_per_ms",)))
        for label, series in fig.metric("throughput_tasks_per_ms").items():
            # Throughput stays within a modest band across a 5x job sweep:
            # no collapse (the scalability claim).
            assert min(series) > 0.4 * max(series), label

    benchmark.pedantic(check, rounds=1, iterations=1)
