"""Cross-seed robustness: do the reproduced orderings survive reseeding?

A single-seed figure can get lucky.  This bench re-runs the headline
claims across independent workload seeds and scores each ordering with
:func:`~repro.experiments.trials.order_stability` (the fraction of
(seed, x-point) cells where the claimed ascending order holds):

* Fig. 5's "DSP beats TetrisW/oDep" must hold in **every** cell;
* Fig. 6's "SRPT has the lowest throughput" must hold in every cell;
* Fig. 6's full preemption-count ordering must hold in at least 70% of
  cells (individual cells are noisy, exactly like individual bars in the
  paper's plots — EXPERIMENTS.md reports the sweep totals).
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    aggregate_trials,
    fig5_makespan,
    fig6_fig7_preemption,
    order_stability,
)

SEEDS = (7, 101, 2023)
JOBS = (15, 30)


@pytest.mark.benchmark(group="robustness")
def test_fig5_ordering_stability(benchmark):
    def run():
        figs = [
            fig5_makespan("cluster", job_counts=JOBS, scale=20.0, seed=s)
            for s in SEEDS
        ]
        dsp_beats_blind = order_stability(
            figs, "makespan", ["DSP", "TetrisW/oDep"]
        )
        dsp_near_best = order_stability(
            figs, "makespan", ["DSP", "TetrisW/SimDep"], tolerance=0.10
        )
        print(f"\n  DSP < TetrisW/oDep: {dsp_beats_blind:.0%} of cells")
        print(f"  DSP <= SimDep (10% tol): {dsp_near_best:.0%} of cells")
        assert dsp_beats_blind == 1.0
        assert dsp_near_best >= 0.5

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="robustness")
def test_fig6_ordering_stability(benchmark):
    def run():
        figs = [
            fig6_fig7_preemption("cluster", job_counts=JOBS, scale=20.0, seed=s)
            for s in SEEDS
        ]
        srpt_worst_thr = order_stability(
            figs, "throughput_tasks_per_ms", ["SRPT", "Amoeba"]
        ) * order_stability(figs, "throughput_tasks_per_ms", ["SRPT", "Natjam"])
        dsp_zero_disorders = all(
            v == 0 for f in figs for v in f.series["DSP"]["num_disorders"]
        )
        preemption_order = order_stability(
            figs, "num_preemptions",
            ["DSP", "DSPW/oPP", "Natjam", "Amoeba", "SRPT"],
            tolerance=0.15,
        )
        print(f"\n  SRPT lowest throughput: {srpt_worst_thr:.0%} of cells")
        print(f"  DSP zero disorders: {dsp_zero_disorders}")
        print(f"  full preemption ordering (15% tol): {preemption_order:.0%} of cells")
        assert srpt_worst_thr == 1.0
        assert dsp_zero_disorders
        assert preemption_order >= 0.7

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.benchmark(group="robustness")
def test_fig6_trial_means(benchmark):
    """Means over the seeds tell the same story the single-seed tables do."""

    def run():
        agg = aggregate_trials(
            lambda s: fig6_fig7_preemption("cluster", job_counts=(15,), scale=20.0, seed=s),
            seeds=SEEDS,
        )
        thr = {m: agg.mean_of(m, "throughput_tasks_per_ms")[0] for m in agg.mean.methods()}
        pre = {m: agg.mean_of(m, "num_preemptions")[0] for m in agg.mean.methods()}
        print(f"\n  mean throughput: { {k: round(v*1000, 4) for k, v in thr.items()} }")
        print(f"  mean preemptions: { {k: round(v) for k, v in pre.items()} }")
        assert thr["SRPT"] == min(thr.values())
        assert pre["DSP"] <= pre["DSPW/oPP"] <= pre["SRPT"]

    benchmark.pedantic(run, rounds=1, iterations=1)
