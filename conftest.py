"""Ensure `src/` is importable even when the package is not pip-installed
(offline environments without the `wheel` package cannot build PEP 660
editables; see README "Install")."""
import pathlib
import sys

_ROOT = pathlib.Path(__file__).parent
_SRC = _ROOT / "src"
for _p in (str(_SRC), str(_ROOT)):
    if _p not in sys.path:
        sys.path.insert(0, _p)
