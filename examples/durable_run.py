#!/usr/bin/env python3
"""Durable runs demo: snapshot, crash, resume — bit-identical continuation.

Runs a workload three ways and proves they are the same run:

1. **Reference** — uninterrupted, with a write-ahead journal and rotated
   full-state snapshots.
2. **Crashed** — the identical engine killed at a mid-run event (the
   simulator's stand-in for SIGKILL on a real driver process).
3. **Recovered** — rebuilt from the latest valid snapshot on disk; the
   journal is reopened at the snapshot's recorded offset and the run
   continues to completion.

Because the simulator is deterministic, recovery is *replay*: the
recovered run's ``RunMetrics``, execution trace and even the journal
**bytes** match the uninterrupted reference exactly.

Run:  python examples/durable_run.py
"""

import tempfile
from pathlib import Path

from repro.config import SimConfig, SnapshotConfig
from repro.core import DSPSystem
from repro.experiments import build_workload_for_cluster, cluster_profile, default_config
from repro.sim import SimEngine, SimulatedCrash, inject_crash, latest_valid_snapshot

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)


def build_engine(cluster, workload, config, workdir: Path) -> SimEngine:
    """Every run (original or recovery) must construct the engine the
    same way — the snapshot's fingerprint enforces it."""
    system = DSPSystem.build(cluster, config)
    return SimEngine(
        cluster, workload.jobs, system.scheduler, preemption=system.preemption,
        dsp_config=config, sim_config=SIM, record_trace=True,
        journal=workdir / "run.journal",
        snapshots=SnapshotConfig(directory=str(workdir / "snapshots"),
                                 every_events=100),
    )


def main() -> None:
    cluster = cluster_profile("cluster")
    config = default_config()
    workload = build_workload_for_cluster(
        8, cluster, scale=30.0, seed=23, config=config, demand_fraction=0.8
    )

    with tempfile.TemporaryDirectory() as tmp:
        ref_dir, crash_dir = Path(tmp, "ref"), Path(tmp, "crash")

        # 1. Uninterrupted reference.
        engine = build_engine(cluster, workload, config, ref_dir)
        reference = engine.run()
        total_pops = engine.runtime.kernel.pops
        print(f"reference run: {total_pops} events, "
              f"makespan {reference.makespan:.1f} s, "
              f"{engine.snapshots.written} snapshots, "
              f"journal {engine.journal.offset} bytes")

        # 2. The same run, killed two-thirds of the way through.
        engine = build_engine(cluster, workload, config, crash_dir)
        inject_crash(engine, at_pop=total_pops * 2 // 3)
        try:
            engine.run()
            raise SystemExit("the injected crash never fired")
        except SimulatedCrash as crash:
            print(f"\ncrashed run:   {crash}")

        # 3. Recover from what the crash left on disk.
        path, data = latest_valid_snapshot(crash_dir / "snapshots")
        print(f"recovering:    {path.name} "
              f"(event #{data['kernel']['pops']}, t={data['kernel']['now']:g} s)")
        system = DSPSystem.build(cluster, config)
        engine = SimEngine.restore(
            data, cluster, workload.jobs, system.scheduler,
            preemption=system.preemption, dsp_config=config, sim_config=SIM,
            record_trace=True, journal=crash_dir / "run.journal",
            snapshots=SnapshotConfig(directory=str(crash_dir / "snapshots"),
                                     every_events=100),
        )
        recovered = engine.run()

        # The recovered run *is* the reference run.
        assert recovered.as_dict() == reference.as_dict(), "metrics diverged"
        ref_bytes = (ref_dir / "run.journal").read_bytes()
        rec_bytes = (crash_dir / "run.journal").read_bytes()
        assert rec_bytes == ref_bytes, "journal bytes diverged"
        print(f"\nrecovered run: makespan {recovered.makespan:.1f} s — "
              f"metrics identical, journal byte-identical "
              f"({len(rec_bytes)} bytes)")


if __name__ == "__main__":
    main()
