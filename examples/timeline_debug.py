#!/usr/bin/env python3
"""Timeline debugging: trace a run and render per-node Gantt charts.

Schedules two interleaved DAG jobs on a tiny cluster with trace recording
on, then prints the per-node occupancy chart — runs, stalls, idle gaps —
first under dependency-aware DSP dispatch, then under dependency-blind
dispatch so the stalled (wasted) capacity is visible as ``#`` blocks.

Run:  python examples/timeline_debug.py
"""

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import SimConfig
from repro.core import DSPPreemption, HeuristicScheduler, Schedule, TaskAssignment
from repro.dag import Job, Task, diamond_dag
from repro.sim import SimEngine, gantt_chart


def tiny_cluster() -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(2)
    ])


def main() -> None:
    cluster = tiny_cluster()
    jobs = [
        Job.from_tasks("A", diamond_dag("A", size_mi=2000.0), deadline=1e6),
        Job.from_tasks("B", diamond_dag("B", size_mi=1000.0), deadline=1e6),
    ]

    # --- 1. Dependency-aware run with DSP preemption.
    engine = SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        preemption=DSPPreemption(),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        record_trace=True,
    )
    metrics = engine.run()
    print("dependency-aware run "
          f"(makespan {metrics.makespan:.1f} s, disorders {metrics.num_disorders}):\n")
    print(gantt_chart(engine.trace, ["n0", "n1"], width=64))

    # --- 2. The same jobs, blind dispatch against an optimistic plan:
    #        watch the '#' stall blocks burn capacity.
    def task(j, i):
        return f"{j}.T{i:04d}"

    optimistic = Schedule({
        # Job A planned tightly on n0; job B's dependents planned early on
        # n1 — before their parents can possibly finish.
        task("A", 0): TaskAssignment(task("A", 0), "n0", 0.0, 4.0),
        task("A", 1): TaskAssignment(task("A", 1), "n0", 4.0, 8.0),
        task("A", 2): TaskAssignment(task("A", 2), "n1", 4.0, 8.0),
        task("A", 3): TaskAssignment(task("A", 3), "n0", 8.0, 12.0),
        task("B", 0): TaskAssignment(task("B", 0), "n1", 0.0, 2.0),
        task("B", 1): TaskAssignment(task("B", 1), "n1", 2.0, 4.0),
        task("B", 2): TaskAssignment(task("B", 2), "n1", 2.5, 4.5),
        task("B", 3): TaskAssignment(task("B", 3), "n1", 3.0, 5.0),  # way early
    })

    class Fixed:
        respects_dependencies = False

        def schedule(self, _jobs):
            return optimistic

    engine2 = SimEngine(
        cluster, jobs, Fixed(),
        sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
        dependency_aware_dispatch=False,
        record_trace=True,
    )
    metrics2 = engine2.run()
    print(f"\nblind dispatch of an optimistic plan "
          f"(makespan {metrics2.makespan:.1f} s, disorders {metrics2.num_disorders}, "
          f"stalled {metrics2.total_stalled_time:.1f} s):\n")
    print(gantt_chart(engine2.trace, ["n0", "n1"], width=64))


if __name__ == "__main__":
    main()
