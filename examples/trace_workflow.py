#!/usr/bin/env python3
"""Trace-substrate walkthrough: generate, persist, reload, infer, schedule.

Shows the full §V data path the way the paper used the Google trace:

1. generate synthetic trace records with Google-trace marginals;
2. write them to CSV and read them back (replayable experiments);
3. infer task dependencies from the non-overlap rule;
4. assemble deadline-bearing jobs and plan them with the exact ILP.

Run:  python examples/trace_workflow.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.cluster import uniform_cluster
from repro.core import ILPScheduler, verify_schedule
from repro.trace import (
    GoogleTraceGenerator,
    infer_dependencies,
    job_from_records,
    read_trace_csv,
    write_trace_csv,
)


def main() -> None:
    # --- 1. Generate.
    gen = GoogleTraceGenerator(rng=2024, median_duration=60.0, stagger=40.0)
    records = gen.job_records("trace-job", num_tasks=10)
    durations = [r.duration for r in records]
    print(f"generated {len(records)} records; durations "
          f"{min(durations):.0f}..{max(durations):.0f} s "
          f"(median-ish {sorted(durations)[len(durations)//2]:.0f} s)")

    # --- 2. Persist and reload (bit-exact).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.csv"
        write_trace_csv(records, path)
        reloaded = read_trace_csv(path)
        assert reloaded == records
        print(f"round-tripped through {path.name}: exact match")

    # --- 3. Infer the DAG (§V: no temporal overlap => dependency).
    parents = infer_dependencies(records)
    edge_count = sum(len(p) for p in parents.values())
    depth = Counter()
    level: dict[int, int] = {}
    for idx in sorted(parents, key=lambda i: records[i].start_time):
        level[idx] = 1 + max((level[p] for p in parents[idx]), default=0)
        depth[level[idx]] += 1
    print(f"inferred {edge_count} dependency edges; "
          f"level histogram {dict(sorted(depth.items()))} (cap: 5 levels)")

    # --- 4. Build the job and solve the exact ILP on a small cluster.
    job = job_from_records(
        "trace-job", records, arrival_time=0.0, deadline_slack=4.0,
        reference_rate_mips=1000.0,
        reference_node_cpu=2.0, reference_node_mem=2.0,
    )
    cluster = uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
    result = ILPScheduler(cluster).solve([job], time_limit=60.0)
    assert verify_schedule(result.schedule, [job], cluster) == []
    print(f"\nexact ILP schedule: makespan {result.makespan:.1f} s "
          f"(status: {result.status.split('(')[0].strip()})")
    for tid in sorted(result.schedule.assignments)[:5]:
        a = result.schedule.assignments[tid]
        print(f"  {tid} -> {a.node_id} [{a.start:7.1f}, {a.finish:7.1f})")
    print("  ...")


if __name__ == "__main__":
    main()
