#!/usr/bin/env python3
"""Preemption in action: urgent deadline rescue and the PP filter.

Two mini-experiments on the same node-constrained workload:

1. **Deadline rescue.** A latecomer job with a tight deadline lands behind
   a fat batch job.  Without preemption it blows its deadline; with DSP's
   urgent pass (allowable waiting time <= ε, §IV-B) it evicts a
   low-priority running task and finishes in time.
2. **PP vs no-PP.** The same contended workload run under DSP and
   DSPW/oPP: the normalized-priority filter trims the preemptions whose
   gain wouldn't cover the context-switch cost.

Run:  python examples/preemption_deadlines.py
"""

from repro.cluster import ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import DSPPreemption, DSPScheduler
from repro.core.levels import task_deadlines
from repro.dag import Job, Task
from repro.sim import NullPreemption, SimEngine


def build_world():
    cluster = uniform_cluster(1, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
    demand = ResourceVector(cpu=2.0, mem=1.0)  # one task per node at a time

    def task(jid, name, size, parents=()):
        return Task(
            task_id=f"{jid}.{name}", job_id=jid, size_mi=size, demand=demand,
            parents=tuple(f"{jid}.{p}" for p in parents),
        )

    batch = Job.from_tasks(
        "batch",
        [task("batch", f"t{i}", 20_000.0) for i in range(3)],  # 3 x 20 s
        deadline=1000.0,
    )
    urgent = Job.from_tasks(
        "urgent", [task("urgent", "rush", 2_000.0)],  # 2 s of work
        deadline=30.0,  # must finish within 30 s
    )
    return cluster, [batch, urgent]


def run(policy, cluster, jobs, config):
    deadlines = {}
    rate = cluster.nodes[0].processing_rate()
    for job in jobs:
        exec_est = {tid: t.execution_time(rate) for tid, t in job.tasks.items()}
        deadlines.update(task_deadlines(job, exec_est))
    engine = SimEngine(
        cluster, jobs, DSPScheduler(cluster, config, ilp_task_limit=0),
        preemption=policy, dsp_config=config, task_deadlines=deadlines,
        sim_config=SimConfig(epoch=1.0, scheduling_period=5.0),
    )
    return engine.run()


def main() -> None:
    config = DSPConfig()

    # --- 1. Deadline rescue.
    cluster, jobs = build_world()
    no_preempt = run(NullPreemption(), cluster, jobs, config)
    cluster, jobs = build_world()
    with_dsp = run(DSPPreemption(config), cluster, jobs, config)

    print("deadline rescue (urgent job due at t=30):")
    print(f"  no preemption : {no_preempt.jobs_within_deadline}/2 jobs in deadline, "
          f"{no_preempt.num_preemptions} preemptions")
    print(f"  DSP           : {with_dsp.jobs_within_deadline}/2 jobs in deadline, "
          f"{with_dsp.num_preemptions} preemptions")
    assert with_dsp.jobs_within_deadline > no_preempt.jobs_within_deadline, (
        "DSP's urgent pass should rescue the tight-deadline job"
    )

    # --- 2. PP suppresses marginal churn on a contended workload.
    from repro.cluster import palmetto_cluster
    from repro.experiments import build_workload_for_cluster, run_preemption

    big_cluster = palmetto_cluster(6)
    workload = build_workload_for_cluster(
        10, big_cluster, scale=30.0, seed=4, demand_fraction=0.8
    )
    sim = SimConfig(epoch=30.0, scheduling_period=300.0)
    cfg = DSPConfig(tau=120.0)
    pp = run_preemption(workload, big_cluster, DSPPreemption(cfg), config=cfg, sim_config=sim)
    wopp = run_preemption(
        workload, big_cluster, DSPPreemption(cfg.without_pp()),
        config=cfg, sim_config=sim,
    )
    print("\nPP ablation on a contended workload:")
    print(f"  DSP      : {pp.num_preemptions:4d} preemptions, "
          f"context-switch overhead {pp.total_context_switch_time:6.2f} s")
    print(f"  DSPW/oPP : {wopp.num_preemptions:4d} preemptions, "
          f"context-switch overhead {wopp.total_context_switch_time:6.2f} s")
    assert pp.num_preemptions <= wopp.num_preemptions


if __name__ == "__main__":
    main()
