#!/usr/bin/env python3
"""Fault tolerance demo: DSP riding out crashes and stragglers (§VI).

Runs the same workload three times — fault-free, with a mid-run node
crash (+ recovery), and with a straggler — and prints the makespans, the
reassignment counts and the post-run fairness analysis.  Reproduces the
classic operational finding: a *slow* node hurts more than a *dead* one,
because a dead node's backlog is reassigned while a straggler keeps
soaking up tasks at reduced speed.

Run:  python examples/fault_tolerance.py
"""

from repro.config import SimConfig
from repro.core import DSPSystem
from repro.experiments import (
    analysis_report,
    build_workload_for_cluster,
    cluster_profile,
    default_config,
)
from repro.sim import FaultEvent, FaultKind, SimEngine

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)


def run(cluster, workload, config, faults, label):
    system = DSPSystem.build(cluster, config)
    engine = SimEngine(
        cluster, workload.jobs, system.scheduler, preemption=system.preemption,
        dsp_config=config, sim_config=SIM, faults=faults,
    )
    metrics = engine.run()
    print(f"\n--- {label}")
    print(f"makespan {metrics.makespan:9.1f} s   "
          f"failures {metrics.num_node_failures}   "
          f"reassigned {metrics.num_task_reassignments}   "
          f"transfer {metrics.total_transfer_time:.1f} s")
    print(analysis_report(engine))
    return metrics


def main() -> None:
    cluster = cluster_profile("cluster")
    config = default_config()
    workload = build_workload_for_cluster(
        10, cluster, scale=30.0, seed=17, config=config, demand_fraction=0.8
    )
    victim = cluster.nodes[0].node_id

    clean = run(cluster, workload, config, None, "fault-free")
    horizon = clean.makespan

    crash_plan = [
        FaultEvent(horizon * 0.1, victim, FaultKind.FAILURE),
        FaultEvent(horizon * 0.9, victim, FaultKind.RECOVERY),
    ]
    crashed = run(cluster, workload, config, crash_plan, f"{victim} crashes at 10%")

    straggle_plan = [
        FaultEvent(horizon * 0.1, victim, FaultKind.SLOWDOWN, factor=0.3),
        FaultEvent(horizon * 0.9, victim, FaultKind.RESTORE),
    ]
    straggled = run(cluster, workload, config, straggle_plan,
                    f"{victim} straggles at 0.3x speed")

    print("\nsummary:")
    print(f"  clean     {clean.makespan:9.1f} s")
    print(f"  crash     {crashed.makespan:9.1f} s  "
          f"(+{crashed.makespan / clean.makespan - 1:.1%})")
    print(f"  straggler {straggled.makespan:9.1f} s  "
          f"(+{straggled.makespan / clean.makespan - 1:.1%})")
    assert crashed.tasks_completed == straggled.tasks_completed == workload.num_tasks


if __name__ == "__main__":
    main()
