#!/usr/bin/env python3
"""Resilience layer demo: retries, speculation and quarantine (§VI).

Runs the same workload under a seed-fixed fault plan that mixes node
crashes with transient task failures, once with the resilience layer off
and once with it on, then shows the speculation path on a straggler.
With the layer on, repeatedly-failing nodes are quarantined so the same
fault plan destroys strictly less completed work.

Run:  python examples/resilience.py
"""

from repro.config import ResilienceConfig, SimConfig
from repro.core import DSPSystem
from repro.experiments import (
    build_workload_for_cluster,
    cluster_profile,
    default_config,
)
from repro.sim import FaultEvent, FaultKind, SimEngine, random_fault_plan

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)

RESILIENCE = ResilienceConfig(
    max_attempts=12,            # attempt budget per task
    backoff_base=5.0,           # retry k waits min(cap, base * 2**(k-1)) s
    backoff_cap=60.0,
    timeout_factor=20.0,        # kill attempts 20x over their expectation
    health_alpha=0.6,           # aggressive EWMA: one failure weighs 0.6
    quarantine_threshold=0.5,   # ... which is already past the threshold
    quarantine_duration=600.0,  # probation before a node is re-admitted
)


def run(cluster, workload, config, faults, label, resilience=None):
    system = DSPSystem.build(cluster, config)
    engine = SimEngine(
        cluster, workload.jobs, system.scheduler, preemption=system.preemption,
        dsp_config=config, sim_config=SIM, faults=faults, resilience=resilience,
    )
    metrics = engine.run()
    print(f"\n--- {label}")
    print(f"makespan {metrics.makespan:9.1f} s   "
          f"lost work {metrics.lost_work_mi / 1e6:7.2f}M MI   "
          f"task failures {metrics.num_task_failures}   "
          f"retries {metrics.num_retries}")
    print(f"quarantines {metrics.num_quarantines}   "
          f"speculative {metrics.num_speculative_launches} launched / "
          f"{metrics.num_speculative_wins} won   "
          f"fault mix {dict(metrics.fault_counts)}")
    return metrics


def main() -> None:
    cluster = cluster_profile("cluster")
    config = default_config()
    workload = build_workload_for_cluster(
        10, cluster, scale=30.0, seed=17, config=config, demand_fraction=0.8
    )

    clean = run(cluster, workload, config, None, "fault-free")
    plan = random_fault_plan(
        cluster, horizon=clean.makespan * 2, rng=3,
        mtbf=3000.0, mttr=300.0, task_fail_rate=4.0,
    )

    off = run(cluster, workload, config, plan, "faults, resilience OFF")
    on = run(cluster, workload, config, plan, "faults, resilience ON",
             resilience=RESILIENCE)

    # Speculation in isolation: one node straggles at 0.3x for the rest of
    # the run; the layer launches copies of its tasks on healthy nodes.
    victim = cluster.nodes[0].node_id
    straggle_plan = [
        FaultEvent(clean.makespan * 0.1, victim, FaultKind.SLOWDOWN, factor=0.3),
    ]
    spec = run(cluster, workload, config, straggle_plan,
               f"{victim} straggles at 0.3x, resilience ON",
               resilience=RESILIENCE)

    print("\nsummary:")
    print(f"  resilience off: {off.lost_work_mi / 1e6:7.2f}M MI lost")
    print(f"  resilience on:  {on.lost_work_mi / 1e6:7.2f}M MI lost "
          f"({on.num_quarantines} quarantines)")
    print(f"  straggler run:  {spec.num_speculative_wins} speculative wins, "
          f"{spec.speculative_waste_mi / 1e6:.2f}M MI copy waste")
    assert off.tasks_completed == on.tasks_completed == workload.num_tasks
    assert spec.tasks_completed == workload.num_tasks
    assert on.lost_work_mi < off.lost_work_mi


if __name__ == "__main__":
    main()
