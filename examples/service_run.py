#!/usr/bin/env python3
"""Scheduler-as-a-service demo: a multi-tenant fleet, an overload storm,
and a kill-9 recovery — all against the async service frontend.

Three acts:

1. **Fleet** — 2000 concurrent inproc clients across 4 tenants with
   weighted shares submit jobs through token-bucket admission with
   client-side retry on backpressure.  Every acknowledged job survives
   to completion (zero acknowledged-job loss) and higher-share tenants
   are acknowledged earlier (deficit-weighted fairness).
2. **Overload** — a tiny-capacity service is flooded; submissions are
   shed *explicitly* (answered ``shed``, never silently dropped) while
   ``status`` keeps answering throughout the storm.
3. **Kill -9** — a scripted workload is crashed mid-flight and recovered
   from the admission journal + service snapshot; the recovered engine
   journal is byte-identical to an uninterrupted golden run.

Run:  python examples/service_run.py
"""

import asyncio
import statistics
import tempfile
import time
from pathlib import Path

from repro.cluster import Cluster, NodeSpec
from repro.config import ServiceConfig, TenantQuota
from repro.core import HeuristicScheduler
from repro.service import ServiceClient, ServiceCore, ServiceFrontend

N_CLIENTS = 2000
TENANTS = {  # name -> share
    "ads": 4.0,
    "etl": 2.0,
    "ml": 1.0,
    "adhoc": 1.0,
}


def make_cluster(n=8):
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=16.0, mem_size=16.0,
                 mips_per_unit=200.0)
        for i in range(n)
    ])


def job_spec(jid: str) -> dict:
    return {
        "job_id": jid,
        "deadline": 10_000.0,
        "tasks": [
            {"task_id": "t0", "size_mi": 20.0,
             "demand": {"cpu": 0.5, "mem": 0.5}, "parents": []},
            {"task_id": "t1", "size_mi": 20.0,
             "demand": {"cpu": 0.5, "mem": 0.5}, "parents": ["t0"]},
        ],
    }


# ------------------------------------------------------------------ act 1
async def fleet() -> None:
    print("=== act 1: 2000-client fleet across 4 tenants ===")
    cfg = ServiceConfig(
        cycle_period=1.0,
        pump_events=4096,
        admission_per_cycle=128,
        max_total_pending=4096,
        request_deadline=0.0,  # no expiry: every accepted job is admitted
        quotas=tuple(
            (name, TenantQuota(rate=500.0, burst=200, max_pending=1024,
                               share=share))
            for name, share in TENANTS.items()
        ),
    )
    core = ServiceCore(make_cluster(), HeuristicScheduler(make_cluster()), cfg)
    frontend = ServiceFrontend(core)
    addr = await frontend.start("inproc://service-run-fleet")

    names = list(TENANTS)
    acks: dict[str, list[int]] = {name: [] for name in names}

    async def one_client(i: int) -> str:
        tenant = names[i % len(names)]
        async with await ServiceClient.connect(addr) as client:
            for _attempt in range(200):
                r = await client.submit_job(tenant, job_spec(f"job{i}"))
                if r["status"] == "retry":  # backpressure: retry later
                    await asyncio.sleep(0.001 * r["retry_after"])
                    continue
                if r["status"] == "ok":
                    acks[tenant].append(r["cycle"])
                return r["status"]
            return "gave-up"

    t0 = time.perf_counter()
    outcomes = await asyncio.gather(*[one_client(i) for i in range(N_CLIENTS)])
    acked = outcomes.count("ok")
    print(f"{N_CLIENTS} clients answered in {time.perf_counter() - t0:.1f}s "
          f"wall: {acked} ok, {outcomes.count('shed')} shed, "
          f"{outcomes.count('gave-up')} gave up")

    async with await ServiceClient.connect(addr) as observer:
        stats = await observer.stats()
    print("per-tenant fairness (share -> mean ack cycle, admitted):")
    for name in sorted(names, key=lambda n: -TENANTS[n]):
        mean_cycle = statistics.mean(acks[name]) if acks[name] else float("nan")
        t = stats["admission"]["tenants"][name]
        print(f"  {name:6s} share {TENANTS[name]:.0f}  "
              f"mean ack cycle {mean_cycle:7.2f}   admitted {t['admitted']}")
    ordered = sorted(names, key=lambda n: statistics.mean(acks[n]))
    assert TENANTS[ordered[0]] >= TENANTS[ordered[-1]], (
        "higher-share tenants should be acknowledged no later than lower-share"
    )

    final = await frontend.drain_and_stop()
    engine = final["engine"]
    assert engine["jobs"] == acked, (engine["jobs"], acked)
    assert engine["tasks_done"] == engine["tasks_total"] == acked * 2
    print(f"zero acknowledged-job loss: {acked} acked == "
          f"{engine['jobs']} completed jobs "
          f"({engine['tasks_done']} tasks)\n")


# ------------------------------------------------------------------ act 2
async def overload() -> None:
    print("=== act 2: overload storm — shed loudly, answer status always ===")
    cfg = ServiceConfig(
        cycle_period=1.0,
        pump_events=64,
        admission_per_cycle=4,
        max_total_pending=32,
        shed_threshold=0.5,
        request_deadline=0.0,
        default_quota=TenantQuota(rate=10_000.0, burst=10_000,
                                  max_pending=10_000),
    )
    core = ServiceCore(make_cluster(), HeuristicScheduler(make_cluster()), cfg)
    frontend = ServiceFrontend(core)
    addr = await frontend.start("inproc://service-run-overload")

    async def flood(i: int) -> str:
        async with await ServiceClient.connect(addr) as client:
            r = await client.submit_job("hog", job_spec(f"flood{i}"))
            return r["status"]

    storm = [asyncio.ensure_future(flood(i)) for i in range(400)]

    # Probe status repeatedly WHILE the storm is in flight.
    probe_latencies = []
    async with await ServiceClient.connect(addr) as probe:
        while any(not f.done() for f in storm):
            t0 = time.perf_counter()
            st = await probe.status()
            probe_latencies.append(time.perf_counter() - t0)
            assert st["status"] == "ok"
            await asyncio.sleep(0)

    outcomes = [f.result() for f in storm]
    counts = {s: outcomes.count(s) for s in sorted(set(outcomes))}
    print(f"storm of {len(storm)} submissions -> {counts}")
    assert counts.get("shed", 0) > 0, "overload must shed"
    assert len(outcomes) == 400, "every request answered — nothing silent"
    print(f"status answered {len(probe_latencies)} times during the storm, "
          f"max latency {max(probe_latencies) * 1000:.1f} ms")

    final = await frontend.drain_and_stop()
    assert final["engine"]["jobs"] == counts.get("ok", 0)
    print("acknowledged jobs all completed despite the storm\n")


# ------------------------------------------------------------------ act 3
SCRIPT = {1: ["j1", "j2"], 3: ["j3"], 5: ["j4", "j5"], 8: ["j6"]}
CYCLES = 12


def drive(core: ServiceCore, start: int, end: int) -> list[str]:
    acked = []
    for k in range(start + 1, end + 1):
        for jid in SCRIPT.get(k, ()):
            ticket = core.submit(
                {"op": "submit_job", "tenant": "acme", "job": job_spec(jid)}
            )
            assert not isinstance(ticket, dict), ticket
        for ticket in core.run_cycle():
            assert ticket.reply["status"] == "ok"
            acked.append(ticket.job_id)
    return acked


def kill9() -> None:
    print("=== act 3: kill -9 mid-flight, recover, golden-compare ===")
    cfg = ServiceConfig(cycle_period=1.0, pump_events=32,
                        snapshot_every_cycles=4)
    with tempfile.TemporaryDirectory() as tmp:
        gold_dir, crash_dir = Path(tmp, "gold"), Path(tmp, "crash")

        gold = ServiceCore(make_cluster(), HeuristicScheduler(make_cluster()),
                           cfg, data_dir=gold_dir)
        gold_acked = drive(gold, 0, CYCLES)
        gold_stats = gold.stats()
        gold.close()
        gold_journal = (gold_dir / "engine.jsonl").read_bytes()
        print(f"golden run: {CYCLES} cycles, {len(gold_acked)} jobs acked, "
              f"{gold_stats['engine']['tasks_done']} tasks done")

        crash = ServiceCore(make_cluster(), HeuristicScheduler(make_cluster()),
                            cfg, data_dir=crash_dir)
        crashed_acked = drive(crash, 0, 6)
        crash.engine.journal.flush()
        del crash  # kill -9: no drain, no close
        print(f"crashed after cycle 6 with {len(crashed_acked)} jobs acked")

        rec = ServiceCore.recover(
            make_cluster(), HeuristicScheduler(make_cluster()), cfg,
            data_dir=crash_dir,
        )
        print(f"recovered at cycle {rec.cycle} "
              f"({len(rec.engine.runtime.state.jobs)} jobs re-registered)")
        rec_acked = drive(rec, rec.cycle, CYCLES)
        rec_stats = rec.stats()
        rec.close()

        assert set(gold_acked) == set(crashed_acked) | set(rec_acked)
        assert gold_stats["engine"] == rec_stats["engine"]
        crash_journal = (crash_dir / "engine.jsonl").read_bytes()
        assert gold_journal == crash_journal
        print(f"engine journal byte-identical after kill-9 recovery "
              f"({len(gold_journal)} bytes); no acknowledged job lost")


def main() -> None:
    asyncio.run(fleet())
    asyncio.run(overload())
    kill9()


if __name__ == "__main__":
    main()
