#!/usr/bin/env python3
"""Quickstart: schedule one DAG job with DSP and simulate its execution.

Builds a small fork-join job (the map/reduce skeleton), plans it with the
DSP scheduler (exact ILP — the batch is small enough), then replays the
plan in the discrete-event simulator with DSP's dependency-aware
preemption and prints the run's metrics.

Run:  python examples/quickstart.py
"""

from repro.cluster import uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import DSPSystem, verify_schedule
from repro.dag import Job, fork_join_dag
from repro.sim import SimEngine


def main() -> None:
    # --- 1. A cluster: two nodes, g(k) = 1000 MIPS each (Eq. 1).
    cluster = uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)

    # --- 2. A job: source -> 4 parallel map tasks -> sink, 1000 MI each
    #         (1 s per task at 1000 MIPS), due within 100 s.
    job = Job.from_tasks(
        "demo", fork_join_dag("demo", width=4, size_mi=1000.0), deadline=100.0
    )
    print(f"job {job.job_id}: {job.num_tasks} tasks, DAG depth {job.depth}, "
          f"critical path {job.critical_path_time(1000.0):.1f} s")

    # --- 3. DSP = offline scheduler + online preemption, one config.
    system = DSPSystem.build(cluster, ilp_task_limit=12)

    # Peek at the offline plan (start time + target node per task, §III).
    plan = system.scheduler.schedule([job])
    print(f"\noffline plan (via {system.scheduler.last_used}), "
          f"makespan {plan.makespan:.2f} s:")
    for tid in sorted(plan.assignments):
        a = plan.assignments[tid]
        print(f"  {tid}  ->  {a.node_id}  [{a.start:5.2f}, {a.finish:5.2f})")
    assert verify_schedule(plan, [job], cluster) == []

    # --- 4. Simulate the execution (fresh scheduler state for the run).
    system.scheduler.reset()
    engine = SimEngine(
        cluster,
        [job],
        system.scheduler,
        preemption=system.preemption,
        dsp_config=system.config,
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
    )
    metrics = engine.run()

    print("\nsimulated execution:")
    print(f"  makespan            {metrics.makespan:.2f} s")
    print(f"  within deadline     {metrics.jobs_within_deadline}/{metrics.jobs_completed}")
    print(f"  preemptions         {metrics.num_preemptions}")
    print(f"  disorders           {metrics.num_disorders}")
    print(f"  avg task waiting    {metrics.avg_task_waiting:.2f} s")


if __name__ == "__main__":
    main()
