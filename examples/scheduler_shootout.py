#!/usr/bin/env python3
"""Compare the scheduling methods on one trace-shaped workload.

Generates a Google-trace-like workload calibrated to a scaled Palmetto
cluster and runs the four §V-A methods (DSP, Aalo, TetrisW/SimDep,
TetrisW/oDep) plus the extension baselines (Graphene-lite, FCFS)
head-to-head — a miniature of the paper's Fig. 5 experiment you can tweak
interactively.

Run:  python examples/scheduler_shootout.py [num_jobs]
"""

import sys

from repro.cluster import palmetto_cluster
from repro.experiments import (
    build_workload_for_cluster,
    default_config,
    default_sim_config,
    make_extended_schedulers,
    run_scheduling,
    series_table,
)


def main() -> None:
    num_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    cluster = palmetto_cluster(8)
    config = default_config()
    workload = build_workload_for_cluster(
        num_jobs, cluster, scale=30.0, seed=1, config=config, demand_fraction=0.8
    )
    print(
        f"workload: {len(workload.jobs)} jobs / {workload.num_tasks} tasks "
        f"on {len(cluster)} nodes\n"
    )

    rows: dict[str, list[float]] = {}
    details: dict[str, dict[str, float]] = {}
    for name, scheduler in make_extended_schedulers(cluster, config).items():
        metrics = run_scheduling(
            workload, cluster, scheduler, config=config,
            sim_config=default_sim_config(),
        )
        rows[name] = [metrics.makespan]
        details[name] = {
            "disorders": metrics.num_disorders,
            "within_deadline": metrics.jobs_within_deadline,
            "avg_wait": metrics.avg_job_waiting,
        }

    print(series_table("metric", ["makespan (s)"], rows))
    print()
    for name, d in details.items():
        print(
            f"{name:16s} disorders={d['disorders']:5.0f}  "
            f"in-deadline={d['within_deadline']:3.0f}/{len(workload.jobs)}  "
            f"avg wait={d['avg_wait']:8.1f} s"
        )

    best = min(rows, key=lambda n: rows[n][0])
    print(f"\nbest makespan: {best}")


if __name__ == "__main__":
    main()
