#!/usr/bin/env python3
"""Domain example: a deadline-bound ETL/analytics pipeline.

The paper's intro motivates DSP with data-parallel analytics whose stages
form a DAG — ingest, per-partition transforms, joins, aggregation, report.
This example builds exactly that shape for three concurrent pipelines
with different SLAs, schedules them with DSP, and shows how the
dependency-aware priority (Eq. 12) front-loads the tasks that unlock the
most downstream work.

Run:  python examples/etl_pipeline.py
"""

from repro.cluster import ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import DSPSystem, PriorityEvaluator
from repro.dag import Job, Task
from repro.sim import SimEngine

DEMAND = ResourceVector(cpu=1.0, mem=1.0, disk=0.02, bandwidth=0.02)


def etl_job(job_id: str, partitions: int, deadline: float, arrival: float) -> Job:
    """ingest -> N transforms -> N cleanups -> join -> report."""

    def t(name: str, size: float, parents=()) -> Task:
        return Task(
            task_id=f"{job_id}.{name}", job_id=job_id, size_mi=size,
            demand=DEMAND, parents=tuple(f"{job_id}.{p}" for p in parents),
        )

    tasks = [t("ingest", 2000.0)]
    for i in range(partitions):
        tasks.append(t(f"transform{i}", 3000.0, parents=["ingest"]))
        tasks.append(t(f"cleanup{i}", 1000.0, parents=[f"transform{i}"]))
    tasks.append(
        t("join", 4000.0, parents=[f"cleanup{i}" for i in range(partitions)])
    )
    tasks.append(t("report", 500.0, parents=["join"]))
    return Job.from_tasks(job_id, tasks, deadline=deadline, arrival_time=arrival)


def main() -> None:
    cluster = uniform_cluster(3, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
    jobs = [
        etl_job("hourly", partitions=4, deadline=60.0, arrival=0.0),
        etl_job("daily", partitions=6, deadline=120.0, arrival=0.0),
        etl_job("adhoc", partitions=2, deadline=90.0, arrival=5.0),
    ]

    config = DSPConfig()
    system = DSPSystem.build(cluster, config)

    # --- The Eq. 12 story: which tasks does DSP consider most valuable?
    all_tasks = {tid: task for job in jobs for tid, task in job.tasks.items()}
    evaluator = PriorityEvaluator(config, all_tasks)
    rate = cluster.nodes[0].processing_rate()
    signals = {
        tid: task.execution_time(rate) for tid, task in all_tasks.items()
    }
    pri = evaluator.compute(
        remaining=signals,
        waiting={tid: 0.0 for tid in all_tasks},
        allowable={tid: 10.0 for tid in all_tasks},
    )
    print("top-5 priority tasks (Eq. 12 — gates to the most downstream work):")
    for tid in sorted(pri, key=pri.get, reverse=True)[:5]:
        print(f"  {pri[tid]:10.2f}  {tid}")
    assert all("ingest" in tid for tid in sorted(pri, key=pri.get, reverse=True)[:3]), (
        "the ingest stages gate everything and must rank highest"
    )

    # --- Simulate the three pipelines under DSP.
    engine = SimEngine(
        cluster, jobs, system.scheduler, preemption=system.preemption,
        dsp_config=config, sim_config=SimConfig(epoch=2.0, scheduling_period=20.0),
    )
    metrics = engine.run()
    print(f"\nall pipelines done in {metrics.makespan:.1f} s; "
          f"{metrics.jobs_within_deadline}/{metrics.jobs_completed} met their SLA; "
          f"{metrics.num_preemptions} preemptions, {metrics.num_disorders} disorders")


if __name__ == "__main__":
    main()
