"""Setup shim: enables legacy `pip install -e .` on environments whose
setuptools lacks PEP 660 editable support (no `wheel` package installed)."""
from setuptools import setup

setup()
