"""Unit tests for the compared methods: Tetris, Aalo, Amoeba, Natjam, SRPT."""

import pytest

from repro.baselines import (
    AaloScheduler,
    AmoebaPreemption,
    NatjamPreemption,
    SRPTPreemption,
    TetrisScheduler,
)
from repro.cluster import ResourceVector, uniform_cluster
from repro.config import DSPConfig
from repro.core import verify_schedule
from repro.dag import Job, Task, diamond_dag, layered_random_dag

from tests.helpers import make_node_view, make_view


def mk(tid: str, parents=(), size=1000.0, cpu=1.0, mem=0.5) -> Task:
    return Task(
        task_id=tid, job_id="J", size_mi=size,
        demand=ResourceVector(cpu=cpu, mem=mem, disk=0.02, bandwidth=0.02),
        parents=tuple(parents),
    )


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestTetrisPacking:
    def test_names_and_flags(self, cluster):
        assert TetrisScheduler(cluster, simdep=False).name == "TetrisW/oDep"
        assert TetrisScheduler(cluster, simdep=True).name == "TetrisW/SimDep"
        assert TetrisScheduler(cluster, simdep=True).respects_dependencies
        assert not TetrisScheduler(cluster, simdep=False).respects_dependencies

    def test_all_tasks_scheduled(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 30, rng=1), deadline=1e9)
        plan = TetrisScheduler(cluster).schedule([job])
        assert set(plan.assignments) == set(job.tasks)

    def test_alignment_prefers_bigger_dot_product(self, cluster):
        # Two tasks fit; the one with the larger demand·free wins the slot.
        big = mk("big", cpu=3.0, mem=3.0)
        small = mk("small", cpu=0.5, mem=0.5)
        job = Job.from_tasks("J", [big, small], deadline=1e9)
        plan = TetrisScheduler(cluster).schedule([job])
        # Both start at 0 (they fit together), but 'big' is packed first on
        # node-00: ties on start → check it landed on the first node.
        assert plan.assignments["big"].start == 0.0

    def test_simdep_respects_precedence_in_plan(self, cluster):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=1e9)
        plan = TetrisScheduler(cluster, simdep=True).schedule([job])
        for tid, task in job.tasks.items():
            for p in task.parents:
                assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9

    def test_wodep_ignores_precedence_in_plan(self, cluster):
        # On an empty cluster every task fits immediately: W/oDep plans the
        # whole diamond at t=0, violating precedence (by design).
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=1e9)
        plan = TetrisScheduler(cluster, simdep=False).schedule([job])
        starts = [plan.assignments[t].start for t in job.tasks]
        assert min(starts) == max(starts) == 0.0

    def test_capacity_never_oversubscribed(self, cluster):
        job = Job.from_tasks(
            "J", [mk(f"t{i}", cpu=3.0, mem=3.0) for i in range(6)], deadline=1e9
        )
        plan = TetrisScheduler(cluster).schedule([job])
        # cpu 3 of 4 -> one task per node at a time; 6 tasks over 2 nodes
        # need 3 sequential waves.
        assert plan.makespan >= 3.0 - 1e-9
        v = verify_schedule(plan, [job], cluster, unit_capacity=True,
                            check_deadlines=False)
        assert v == []  # one-at-a-time here implies no overlap per node

    def test_release_times(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1e9, arrival_time=42.0)
        plan = TetrisScheduler(cluster).schedule([job])
        assert plan.assignments["a"].start >= 42.0

    def test_persistent_backlog(self, cluster):
        sched = TetrisScheduler(cluster)
        j1 = Job.from_tasks("J", [mk(f"t{i}", cpu=3.0, mem=3.0) for i in range(4)],
                            deadline=1e9)
        sched.schedule([j1])
        t = Task(task_id="K.x", job_id="K", size_mi=1000.0,
                 demand=ResourceVector(cpu=3.0, mem=3.0))
        j2 = Job(job_id="K", tasks={"K.x": t}, deadline=1e9)
        plan2 = sched.schedule([j2])
        assert plan2.assignments["K.x"].start > 0.0

    def test_reset(self, cluster):
        sched = TetrisScheduler(cluster)
        j1 = Job.from_tasks("J", [mk(f"t{i}", cpu=3.0, mem=3.0) for i in range(4)],
                            deadline=1e9)
        sched.schedule([j1])
        sched.reset()
        t = Task(task_id="K.x", job_id="K", size_mi=1000.0,
                 demand=ResourceVector(cpu=3.0, mem=3.0))
        j2 = Job(job_id="K", tasks={"K.x": t}, deadline=1e9)
        assert sched.schedule([j2]).assignments["K.x"].start == 0.0

    def test_oversized_task_raises(self, cluster):
        job = Job.from_tasks("J", [mk("a", cpu=100.0)], deadline=1e9)
        with pytest.raises(RuntimeError, match="stuck"):
            TetrisScheduler(cluster).schedule([job])

    def test_empty_batch(self, cluster):
        assert len(TetrisScheduler(cluster).schedule([])) == 0


class TestAalo:
    def test_queue_of_by_total_work(self, cluster):
        sched = AaloScheduler(cluster, base_threshold=1000.0, factor=10.0)
        small = Job.from_tasks("J", [mk("a", size=500.0)], deadline=1e9)
        t = Task(task_id="K.b", job_id="K", size_mi=50_000.0)
        big = Job(job_id="K", tasks={"K.b": t}, deadline=1e9)
        assert sched.queue_of(small) < sched.queue_of(big)

    def test_queue_clamped_to_num_queues(self, cluster):
        sched = AaloScheduler(cluster, base_threshold=1.0, factor=2.0, num_queues=3)
        t = Task(task_id="K.b", job_id="K", size_mi=1e12)
        big = Job(job_id="K", tasks={"K.b": t}, deadline=1e9)
        assert sched.queue_of(big) == 2

    def test_lower_queue_served_first(self, cluster):
        # Big job arrives first but the small job (lower queue) is planned
        # first and therefore starts no later.
        big_tasks = [mk(f"b{i}", size=50_000.0, cpu=3.0, mem=3.0) for i in range(4)]
        big = Job.from_tasks("J", big_tasks, deadline=1e9, arrival_time=0.0)
        t = Task(task_id="K.s", job_id="K", size_mi=100.0,
                 demand=ResourceVector(cpu=3.0, mem=3.0))
        small = Job(job_id="K", tasks={"K.s": t}, deadline=1e9, arrival_time=0.0)
        plan = AaloScheduler(cluster, base_threshold=1000.0).schedule([big, small])
        assert plan.assignments["K.s"].start == pytest.approx(0.0)

    def test_precedence_respected(self, cluster):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=1e9)
        plan = AaloScheduler(cluster).schedule([job])
        for tid, task in job.tasks.items():
            for p in task.parents:
                assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            AaloScheduler(cluster, base_threshold=0.0)
        with pytest.raises(ValueError):
            AaloScheduler(cluster, factor=1.0)
        with pytest.raises(ValueError):
            AaloScheduler(cluster, num_queues=0)


class TestSRPT:
    def test_flags(self):
        p = SRPTPreemption()
        assert not p.respects_dependencies
        assert not p.uses_checkpointing  # §V: SRPT has no checkpoint

    def test_priority_formula(self):
        p = SRPTPreemption(DSPConfig(srpt_alpha=0.5, srpt_beta=1.0))
        v = make_view("t", remaining=2.0, waiting=10.0)
        assert p.priority(v) == pytest.approx(0.5 * 10.0 + 1.0 / 2.0)

    def test_short_remaining_preempts_long(self):
        p = SRPTPreemption()
        view = make_node_view(
            running=[make_view("long", running=True, remaining=100.0)],
            waiting=[make_view("short", remaining=0.5)],
        )
        d = list(p.select_preemptions(view))
        assert len(d) == 1 and d[0].victim_task_id == "long"

    def test_long_does_not_preempt_short(self):
        p = SRPTPreemption()
        view = make_node_view(
            running=[make_view("short", running=True, remaining=0.5)],
            waiting=[make_view("long", remaining=100.0)],
        )
        assert list(p.select_preemptions(view)) == []

    def test_considers_all_waiting(self):
        # Two victims available, two deserving waiters: both preempt (the
        # "all tasks in the waiting queue" property of §V).
        p = SRPTPreemption()
        view = make_node_view(
            running=[
                make_view("r1", running=True, remaining=100.0),
                make_view("r2", running=True, remaining=90.0),
            ],
            waiting=[make_view("w1", remaining=0.5), make_view("w2", remaining=0.6)],
        )
        assert len(list(p.select_preemptions(view))) == 2

    def test_ignores_runnability(self):
        # Dependency-blind: promotes a non-runnable waiter too.
        p = SRPTPreemption()
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0)],
            waiting=[make_view("w", remaining=0.5, runnable=False)],
        )
        assert len(list(p.select_preemptions(view))) == 1


class TestAmoeba:
    def test_flags(self):
        p = AmoebaPreemption()
        assert not p.respects_dependencies
        assert p.uses_checkpointing

    def test_most_resources_evicted_first(self):
        p = AmoebaPreemption()
        view = make_node_view(
            running=[
                make_view("fat", running=True, remaining=50.0, footprint=10.0),
                make_view("thin", running=True, remaining=60.0, footprint=1.0),
            ],
            waiting=[make_view("w", remaining=1.0)],
        )
        d = list(p.select_preemptions(view))
        assert d[0].victim_task_id == "fat"

    def test_only_shorter_remaining_preempts(self):
        p = AmoebaPreemption()
        view = make_node_view(
            running=[make_view("r", running=True, remaining=5.0, footprint=10.0)],
            waiting=[make_view("w", remaining=50.0)],
        )
        assert list(p.select_preemptions(view)) == []

    def test_shortest_waiting_first(self):
        p = AmoebaPreemption()
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0, footprint=5.0)],
            waiting=[make_view("w_long", remaining=20.0), make_view("w_short", remaining=1.0)],
        )
        d = list(p.select_preemptions(view))
        assert d[0].preempting_task_id == "w_short"


class TestNatjam:
    def test_flags(self):
        p = NatjamPreemption()
        assert not p.respects_dependencies
        assert p.uses_checkpointing

    def test_production_evicts_research(self):
        p = NatjamPreemption()
        view = make_node_view(
            running=[make_view("research", running=True, weight=0.0)],
            waiting=[make_view("prod", weight=1.0)],
        )
        d = list(p.select_preemptions(view))
        assert d == [type(d[0])("prod", "research")]

    def test_research_never_evicts(self):
        p = NatjamPreemption()
        view = make_node_view(
            running=[make_view("research", running=True, weight=0.0)],
            waiting=[make_view("also_research", weight=0.0)],
        )
        assert list(p.select_preemptions(view)) == []

    def test_production_never_victim(self):
        p = NatjamPreemption()
        view = make_node_view(
            running=[make_view("prod_r", running=True, weight=1.0)],
            waiting=[make_view("prod_w", weight=1.0)],
        )
        assert list(p.select_preemptions(view)) == []

    def test_three_level_eviction_order(self):
        p = NatjamPreemption()
        victims = [
            make_view("most_res", running=True, weight=0.0, footprint=10.0,
                      deadline=100.0, remaining=50.0),
            make_view("max_dl", running=True, weight=0.0, footprint=5.0,
                      deadline=900.0, remaining=50.0),
            make_view("short_rem", running=True, weight=0.0, footprint=5.0,
                      deadline=100.0, remaining=1.0),
        ]
        view = make_node_view(
            running=victims,
            waiting=[make_view("p", weight=1.0)],
        )
        d = list(p.select_preemptions(view))
        # Level 1: most resources wins outright.
        assert d[0].victim_task_id == "most_res"

    def test_deadline_tiebreak(self):
        p = NatjamPreemption()
        victims = [
            make_view("near_dl", running=True, weight=0.0, footprint=5.0,
                      deadline=100.0, remaining=50.0),
            make_view("far_dl", running=True, weight=0.0, footprint=5.0,
                      deadline=900.0, remaining=50.0),
        ]
        view = make_node_view(running=victims, waiting=[make_view("p", weight=1.0)])
        d = list(p.select_preemptions(view))
        # Equal resources: the max-deadline (most slack) research task goes.
        assert d[0].victim_task_id == "far_dl"


class TestTetrisCapacityProperty:
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), n=st.integers(2, 40))
    def test_plan_never_oversubscribes(self, seed, n):
        """Tetris' planned concurrent demand never exceeds any node's
        capacity at any instant (checked by sweeping segment boundaries)."""
        from repro.cluster import ResourceVector as RV

        cluster = uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
        tasks = layered_random_dag(
            "J", n, rng=seed,
            demand_sampler=lambda g: RV(
                cpu=float(g.uniform(0.5, 3.5)), mem=float(g.uniform(0.5, 3.5)),
                disk=0.02, bandwidth=0.02,
            ),
        )
        job = Job.from_tasks("J", tasks, deadline=1e12)
        plan = TetrisScheduler(cluster).schedule([job])
        for node in cluster:
            segs = plan.tasks_on(node.node_id)
            boundaries = sorted({a.start for a in segs})
            for t in boundaries:
                live = [a for a in segs if a.start <= t + 1e-9 < a.finish - 1e-9]
                used_cpu = sum(job.tasks[a.task_id].demand.cpu for a in live)
                used_mem = sum(job.tasks[a.task_id].demand.mem for a in live)
                assert used_cpu <= node.cpu_size + 1e-6
                assert used_mem <= node.mem_size + 1e-6
