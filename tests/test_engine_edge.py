"""Edge-case tests for the engine: context accessors, view limits, stalled
victims, transfer re-charging, and round-boundary arrivals."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import HeuristicScheduler, Schedule, TaskAssignment
from repro.dag import Job, Task
from repro.sim import (
    NullPreemption,
    PreemptionDecision,
    PreemptionPolicy,
    SimContext,
    SimEngine,
)


def mk(tid: str, job="J", parents=(), size=1000.0, cpu=1.0,
       input_mb=0.0, input_location=None) -> Task:
    return Task(
        task_id=tid, job_id=job, size_mi=size,
        demand=ResourceVector(cpu=cpu, mem=0.5),
        parents=tuple(parents),
        input_mb=input_mb, input_location=input_location,
    )


def one_lane(n=1) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0,
                 bandwidth_capacity=100.0)
        for i in range(n)
    ])


class ContextProbe(PreemptionPolicy):
    """Policy that snapshots SimContext values at its first epoch."""

    name = "probe"

    def __init__(self):
        self.ctx: SimContext | None = None
        self.samples: dict = {}

    def attach(self, ctx):
        self.ctx = ctx

    def select_preemptions(self, view):
        if not self.samples and view.waiting:
            tid = view.waiting[0].task_id
            self.samples = {
                "now": self.ctx.now(),
                "remaining": self.ctx.remaining_time(tid),
                "waiting": self.ctx.waiting_time(tid),
                "allowable": self.ctx.allowable_wait(tid),
                "completed": self.ctx.is_completed(tid),
                "epoch": self.ctx.epoch,
                "children": dict(self.ctx.children),
                "num_tasks": len(self.ctx.tasks),
            }
        return ()


class TestSimContext:
    def test_accessors_consistent(self):
        cl = one_lane(1)
        job = Job.from_tasks(
            "J", [mk("a", size=5000.0), mk("b", size=1000.0)], deadline=1e5
        )
        probe = ContextProbe()
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl), preemption=probe,
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        eng.run()
        s = probe.samples
        assert s, "probe never saw a waiting task"
        assert s["epoch"] == 1.0
        assert s["num_tasks"] == 2
        assert not s["completed"]
        assert s["remaining"] > 0
        assert s["waiting"] >= 0
        # allowable = deadline - now - remaining, all from the same instant.
        assert s["allowable"] == pytest.approx(1e5 - s["now"] - s["remaining"], abs=1e-6)
        assert s["children"] == {"a": (), "b": ()}


class TestViewQueueLimit:
    def test_policy_sees_at_most_limit(self):
        seen = []

        class Counter(PreemptionPolicy):
            name = "counter"

            def select_preemptions(self, view):
                seen.append(len(view.waiting))
                return ()

        cl = one_lane(1)
        tasks = [mk(f"t{i:02d}", size=2000.0) for i in range(10)]
        job = Job.from_tasks("J", tasks, deadline=1e6)
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl), preemption=Counter(),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
            view_queue_limit=3,
        )
        eng.run()
        assert seen and max(seen) <= 3


class TestStalledVictim:
    def test_policy_can_evict_stalled_task(self):
        """A stalled (disordered) task occupies resources and is a valid
        preemption victim; evicting it frees capacity for real work."""
        from tests.test_engine import FixedScheduler

        cl = one_lane(2)
        a = mk("a", size=4000.0)                       # 8 s on n0
        b = mk("b", size=500.0, parents=("a",))        # stalls on n1
        c = mk("c", size=1000.0)                       # runnable, queued on n1
        job = Job.from_tasks("J", [a, b, c], deadline=1e6)
        plan = Schedule({
            "a": TaskAssignment("a", "n0", 0.0, 8.0),
            "b": TaskAssignment("b", "n1", 0.0, 1.0),   # dispatches at t=0 -> stall
            "c": TaskAssignment("c", "n1", 5.0, 7.0),
        })

        class EvictStalled(PreemptionPolicy):
            respects_dependencies = False
            name = "evict-stalled"
            fired = False

            def select_preemptions(self, view):
                if self.fired:
                    return ()
                stalled = [r for r in view.running if not r.is_runnable]
                waiting = [w for w in view.waiting if w.is_runnable]
                if stalled and waiting:
                    self.fired = True
                    return [PreemptionDecision(waiting[0].task_id, stalled[0].task_id)]
                return ()

        policy = EvictStalled()
        eng = SimEngine(
            cl, [job], FixedScheduler(plan), preemption=policy,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            dependency_aware_dispatch=False,
        )
        m = eng.run()
        assert policy.fired
        assert m.tasks_completed == 3
        # c ran while b (stalled) was evicted: c completes well before a.
        assert eng._tasks["c"].completed_at < eng._tasks["a"].completed_at


class TestTransferRecharging:
    def test_same_node_refetch_free(self):
        """A preempted task resumed on the SAME node does not re-pay its
        input transfer (the data is already local)."""
        from tests.test_engine import ScriptedPolicy

        cl = one_lane(1)
        long = mk("long", size=5000.0, input_mb=200.0, input_location="n9")
        short = mk("short", size=500.0)
        # input_location n9 is off-cluster-node; transfer = 200/100 = 2 s.
        job = Job.from_tasks("J", [long, short], deadline=1e6)
        policy = ScriptedPolicy("short", "long")
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl, locality_aware=False),
            preemption=policy,
            sim_config=SimConfig(epoch=0.7, scheduling_period=10.0),
        )
        m = eng.run()
        assert policy.fired
        # Transfer charged exactly once despite the preemption+resume.
        assert m.total_transfer_time == pytest.approx(2.0)


class TestRoundBoundaries:
    def test_job_arriving_exactly_at_round_is_scheduled(self):
        cl = one_lane(2)
        j1 = Job.from_tasks("J", [mk("a")], deadline=1e6)
        t = mk("K.b", job="K")
        j2 = Job(job_id="K", tasks={"K.b": t}, deadline=1e6, arrival_time=10.0)
        eng = SimEngine(
            cl, [j1, j2], HeuristicScheduler(cl),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        m = eng.run()
        assert m.tasks_completed == 2
        # Arrival at t=10 coincides with the round at t=10: scheduled then,
        # so it finishes at 12, not 22.
        assert m.makespan == pytest.approx(12.0, abs=1e-6)

    def test_null_policy_counts_no_context_switches(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=1e6)
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl), preemption=NullPreemption(),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        m = eng.run()
        assert m.total_context_switch_time == 0.0
        assert m.num_preemptions == 0
