"""Property-based tests on cross-module invariants.

These are the suite's safety net: for *any* small random workload, every
policy must terminate with all tasks completed, schedules must satisfy
precedence, and conservation laws (waits non-negative, work accounted)
must hold.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import DSPPreemption, DSPScheduler, HeuristicScheduler
from repro.baselines import AmoebaPreemption, NatjamPreemption, SRPTPreemption
from repro.dag import Job, layered_random_dag
from repro.sim import NullPreemption, SimEngine

SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_jobs(seed: int, num_jobs: int, tasks_per_job: int) -> list[Job]:
    jobs = []
    for j in range(num_jobs):
        jid = f"J{j}"
        tasks = layered_random_dag(
            jid, tasks_per_job, rng=seed * 101 + j,
            size_sampler=lambda g: float(g.uniform(200.0, 3000.0)),
            demand_sampler=lambda g: ResourceVector(
                cpu=float(g.uniform(0.2, 1.5)),
                mem=float(g.uniform(0.2, 1.5)),
                disk=0.02, bandwidth=0.02,
            ),
        )
        jobs.append(Job.from_tasks(jid, tasks, deadline=1e9, arrival_time=float(j)))
    return jobs


def run(jobs, policy, aware=None, seed_nodes=2):
    cluster = uniform_cluster(seed_nodes, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
    engine = SimEngine(
        cluster,
        jobs,
        HeuristicScheduler(cluster),
        preemption=policy,
        sim_config=SimConfig(epoch=1.0, scheduling_period=30.0),
        dependency_aware_dispatch=aware,
    )
    return engine, engine.run()


class TestEngineTermination:
    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 4), t=st.integers(1, 12))
    def test_null_policy_completes_everything(self, seed, n, t):
        jobs = random_jobs(seed, n, t)
        _, m = run(jobs, NullPreemption())
        assert m.tasks_completed == sum(len(j) for j in jobs)
        assert m.num_preemptions == 0

    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 3), t=st.integers(1, 10))
    def test_dsp_policy_completes_everything(self, seed, n, t):
        jobs = random_jobs(seed, n, t)
        _, m = run(jobs, DSPPreemption(DSPConfig()))
        assert m.tasks_completed == sum(len(j) for j in jobs)
        assert m.num_disorders == 0

    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 3), t=st.integers(1, 10))
    def test_srpt_no_checkpoint_still_terminates(self, seed, n, t):
        jobs = random_jobs(seed, n, t)
        _, m = run(jobs, SRPTPreemption(DSPConfig()))
        assert m.tasks_completed == sum(len(j) for j in jobs)

    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 3), t=st.integers(1, 10))
    def test_amoeba_natjam_terminate(self, seed, n, t):
        jobs = random_jobs(seed, n, t)
        for policy in (AmoebaPreemption(), NatjamPreemption()):
            _, m = run(jobs, policy)
            assert m.tasks_completed == sum(len(j) for j in jobs)


class TestExecutionOrderInvariant:
    @SETTINGS
    @given(seed=st.integers(0, 5000), t=st.integers(2, 15))
    def test_dependency_aware_completion_order(self, seed, t):
        """With aware dispatch, every task completes after its parents."""
        jobs = random_jobs(seed, 1, t)
        engine, _ = run(jobs, DSPPreemption(DSPConfig()))
        completed = {
            tid: rt.completed_at for tid, rt in engine._tasks.items()
        }
        for job in jobs:
            for tid, task in job.tasks.items():
                for p in task.parents:
                    # Parent completion <= child completion - child exec time.
                    assert completed[p] <= completed[tid]


class TestWaitConservation:
    @SETTINGS
    @given(seed=st.integers(0, 5000), t=st.integers(1, 12))
    def test_waits_nonnegative_and_bounded(self, seed, t):
        jobs = random_jobs(seed, 1, t)
        _, m = run(jobs, NullPreemption())
        assert m.avg_job_waiting >= 0.0
        assert m.avg_task_waiting <= m.sim_end_time


class TestSchedulerFeasibility:
    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 3), t=st.integers(1, 15))
    def test_dsp_scheduler_plan_respects_precedence(self, seed, n, t):
        cluster = uniform_cluster(2, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        jobs = random_jobs(seed, n, t)
        plan = DSPScheduler(cluster, ilp_task_limit=0).schedule(jobs)
        for job in jobs:
            for tid, task in job.tasks.items():
                for p in task.parents:
                    assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9
                assert plan.assignments[tid].start >= job.arrival_time - 1e-9


class TestMakespanBounds:
    @SETTINGS
    @given(seed=st.integers(0, 5000), n=st.integers(1, 3), t=st.integers(1, 12))
    def test_no_policy_beats_the_lower_bound(self, seed, n, t):
        """Physics check: no simulated makespan undercuts the theoretical
        lower bound (critical path / capacity / per-dimension)."""
        from repro.cluster import uniform_cluster
        from repro.experiments import makespan_lower_bound

        jobs = random_jobs(seed, n, t)
        cluster = uniform_cluster(2, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        for policy in (NullPreemption(), DSPPreemption(DSPConfig()), SRPTPreemption()):
            engine = SimEngine(
                cluster, jobs, HeuristicScheduler(cluster),
                preemption=policy,
                sim_config=SimConfig(epoch=1.0, scheduling_period=30.0),
            )
            m = engine.run()
            assert m.makespan >= makespan_lower_bound(jobs, cluster) - 1e-6


class TestFaultTermination:
    @SETTINGS
    @given(seed=st.integers(0, 2000), t=st.integers(2, 10))
    def test_random_faults_never_lose_tasks(self, seed, t):
        """Under any random failure/straggler plan, every task completes."""
        from repro.cluster import uniform_cluster
        from repro.sim import random_fault_plan

        jobs = random_jobs(seed, 2, t)
        cluster = uniform_cluster(3, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        plan = random_fault_plan(
            cluster, horizon=200.0, rng=seed, mtbf=60.0, mttr=20.0,
            straggler_rate=0.5, straggler_duration=30.0,
        )
        engine = SimEngine(
            cluster, jobs, HeuristicScheduler(cluster),
            preemption=DSPPreemption(DSPConfig()),
            sim_config=SimConfig(epoch=1.0, scheduling_period=30.0),
            faults=plan,
        )
        m = engine.run()
        assert m.tasks_completed == sum(len(j) for j in jobs)
