"""Tests for the discrete-event engine: dispatch, precedence, preemption
mechanics, disorders, stall eviction, deadlock detection."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    NullPreemption,
    PreemptionDecision,
    PreemptionPolicy,
    SimEngine,
    SimulationStuck,
)


def mk(tid: str, job="J", parents=(), size=1000.0, cpu=1.0, mem=0.5) -> Task:
    return Task(
        task_id=tid, job_id=job, size_mi=size,
        demand=ResourceVector(cpu=cpu, mem=mem), parents=tuple(parents),
    )


def one_lane_cluster(n=1) -> Cluster:
    """Nodes that fit exactly one unit task at a time (cpu 1)."""
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def run_engine(cluster, jobs, policy=None, aware=None, **kw):
    sched = HeuristicScheduler(cluster)
    eng = SimEngine(
        cluster, jobs, sched, preemption=policy,
        sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
        dependency_aware_dispatch=aware,
        **kw,
    )
    return eng.run()


class ScriptedPolicy(PreemptionPolicy):
    """Returns a fixed decision once, when both tasks appear in the view."""

    name = "scripted"

    def __init__(self, preempting: str, victim: str, *, aware=True, checkpoint=True):
        self.respects_dependencies = aware
        self.uses_checkpointing = checkpoint
        self._pre = preempting
        self._vic = victim
        self.fired = False

    def select_preemptions(self, view):
        if self.fired:
            return ()
        waiting_ids = {t.task_id for t in view.waiting}
        running_ids = {t.task_id for t in view.running}
        if self._pre in waiting_ids and self._vic in running_ids:
            self.fired = True
            return [PreemptionDecision(self._pre, self._vic)]
        return ()


class TestBasicExecution:
    def test_all_tasks_complete(self):
        cl = uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
        job = Job.from_tasks("J", [mk("a"), mk("b", parents=["a"])], deadline=100.0)
        m = run_engine(cl, [job])
        assert m.tasks_completed == 2
        assert m.jobs_completed == 1

    def test_chain_makespan(self):
        cl = one_lane_cluster(1)  # 500 MIPS -> 2 s per 1000 MI task
        tasks = [mk("a"), mk("b", parents=["a"]), mk("c", parents=["b"])]
        job = Job.from_tasks("J", tasks, deadline=100.0)
        m = run_engine(cl, [job])
        assert m.makespan == pytest.approx(6.0, abs=1e-6)

    def test_parallel_tasks_overlap(self):
        cl = uniform_cluster(2, cpu_size=1.0, mem_size=1.0, mips_per_unit=1000.0)
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=100.0)
        m = run_engine(cl, [job])
        assert m.makespan == pytest.approx(1.0, abs=1e-6)

    def test_deadline_miss_recorded(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=2.5)  # needs 4 s
        m = run_engine(cl, [job])
        assert m.jobs_completed == 1
        assert m.jobs_within_deadline == 0
        assert m.deadline_misses == 1

    def test_engine_single_use(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a")], deadline=100.0)
        sched = HeuristicScheduler(cl)
        eng = SimEngine(cl, [job], sched, sim_config=SimConfig(epoch=1.0, scheduling_period=10.0))
        eng.run()
        with pytest.raises(Exception, match="single-use"):
            eng.run()

    def test_rejects_empty_jobs(self):
        cl = one_lane_cluster(1)
        with pytest.raises(ValueError):
            SimEngine(cl, [], HeuristicScheduler(cl))

    def test_duplicate_job_ids_rejected(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a")], deadline=100.0)
        with pytest.raises(ValueError, match="duplicate"):
            SimEngine(cl, [job, job], HeuristicScheduler(cl))

    def test_determinism(self):
        cl = uniform_cluster(2, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        jobs = [
            Job.from_tasks("J", [mk("a"), mk("b", parents=["a"]), mk("c")], deadline=100.0)
        ]
        m1 = run_engine(cl, jobs)
        m2 = run_engine(cl, jobs)
        assert m1.makespan == m2.makespan
        assert m1.avg_job_waiting == m2.avg_job_waiting


class TestPrecedence:
    def test_child_never_starts_before_parent_done(self):
        # One-lane node: parent runs 2 s; with dependency-aware dispatch the
        # child (queued with an optimistic planned start) must wait.
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a"), mk("b", parents=["a"])], deadline=100.0)
        m = run_engine(cl, [job])
        assert m.num_disorders == 0
        assert m.makespan == pytest.approx(4.0, abs=1e-6)

    def test_oversized_task_detected(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a", cpu=50.0)], deadline=100.0)
        with pytest.raises(SimulationStuck, match="exceeds every node"):
            SimEngine(cl, [job], HeuristicScheduler(cl))


class TestPreemptionMechanics:
    def _two_task_setup(self, checkpoint=True):
        """One 1-lane node; long task runs, short task waits; script: the
        short preempts the long at the first epoch."""
        cl = one_lane_cluster(1)  # 500 MIPS
        long = mk("long", size=5000.0)          # 10 s
        short = mk("short", size=500.0)         # 1 s
        job = Job.from_tasks("J", [long, short], deadline=1e6)
        policy = ScriptedPolicy("short", "long", checkpoint=checkpoint)
        cfg = DSPConfig(recovery_time=0.05, sigma=0.05)
        sched = HeuristicScheduler(cl)
        eng = SimEngine(
            cl, [job], sched, preemption=policy, dsp_config=cfg,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
        )
        return eng, policy

    def test_preemption_happens_and_counts(self):
        eng, policy = self._two_task_setup()
        m = eng.run()
        assert policy.fired
        assert m.num_preemptions == 1
        assert m.total_context_switch_time == pytest.approx(0.1)

    def test_checkpoint_preserves_progress(self):
        # With checkpointing: long runs [0, t_p], short runs 1 s, long
        # resumes with recovery 0.1 and finishes the REMAINDER.
        eng, _ = self._two_task_setup(checkpoint=True)
        m = eng.run()
        # Total busy: 10 (long, split) + 1 (short) + 0.1 recovery = 11.1.
        assert m.makespan == pytest.approx(11.1, abs=0.01)

    def test_no_checkpoint_restarts_from_scratch(self):
        eng, _ = self._two_task_setup(checkpoint=False)
        m = eng.run()
        # Long ran some prefix p in [0, ~0.5] that is lost; makespan ->
        # p + 1 (short) + 0.1 + 10 (full rerun) > 11.1.
        assert m.makespan > 11.3

    def test_victim_over_preemption_cap_protected(self):
        cl = one_lane_cluster(1)
        long = mk("long", size=5000.0)
        short = mk("short", size=500.0)
        job = Job.from_tasks("J", [long, short], deadline=1e6)
        policy = ScriptedPolicy("short", "long")
        sched = HeuristicScheduler(cl)
        eng = SimEngine(
            cl, [job], sched, preemption=policy,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            max_preemptions_per_task=1,
        )
        m = eng.run()
        assert m.num_preemptions <= 1


class FixedScheduler:
    """Returns a pre-built plan — used to inject *optimistic* planned
    starts, the real-world condition that makes blind dispatch stall."""

    respects_dependencies = False

    def __init__(self, plan):
        self._plan = plan

    def schedule(self, jobs):
        return self._plan


class TestDisordersAndStalls:
    def _optimistic_setup(self):
        """n0 runs a then x (16 s total); the plan believes x finishes at 8
        and schedules x's child b on n1 at t=8.  Blind dispatch starts b at
        8 although x is still running — a disorder and a stall."""
        from repro.core import Schedule, TaskAssignment

        cl = one_lane_cluster(2)
        a = mk("a", size=4000.0)               # 8 s at 500 MIPS
        x = mk("x", size=4000.0)
        b = mk("b", size=500.0, parents=["x"])  # 1 s
        job = Job.from_tasks("J", [a, x, b], deadline=1e6)
        plan = Schedule({
            "a": TaskAssignment("a", "n0", 0.0, 8.0),
            "x": TaskAssignment("x", "n0", 0.1, 8.1),   # optimistic!
            "b": TaskAssignment("b", "n1", 8.1, 9.1),
        })
        return cl, job, FixedScheduler(plan)

    def test_aware_dispatch_no_disorders(self):
        cl, job, sched = self._optimistic_setup()
        eng = SimEngine(
            cl, [job], sched,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            dependency_aware_dispatch=True,
        )
        m = eng.run()
        assert m.num_disorders == 0
        assert m.total_stalled_time == 0.0

    def test_blind_dispatch_creates_disorder(self):
        cl, job, sched = self._optimistic_setup()
        eng = SimEngine(
            cl, [job], sched,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            dependency_aware_dispatch=False,
        )
        m = eng.run()
        assert m.num_disorders >= 1
        assert m.total_stalled_time > 0.0
        assert m.tasks_completed == 3

    def test_stall_eviction_frees_capacity(self):
        cl, job, sched = self._optimistic_setup()
        eng = SimEngine(
            cl, [job], sched,
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            dependency_aware_dispatch=False,
            stall_timeout=1.0,
        )
        m = eng.run()
        assert m.num_stall_evictions >= 1
        # Evictions are not policy preemptions.
        assert m.num_preemptions == 0
        assert m.tasks_completed == 3

    def test_stall_time_counts_as_waiting(self):
        cl, job, sched = self._optimistic_setup()

        def run(aware):
            eng = SimEngine(
                cl, [job], FixedScheduler(sched._plan),
                sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
                dependency_aware_dispatch=aware,
            )
            return eng.run()

        aware = run(True)
        blind = run(False)
        # Stalling must not reduce measured waiting vs the aware run.
        assert blind.avg_job_waiting >= aware.avg_job_waiting - 1e-6

    def test_invalid_engine_params(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a")], deadline=100.0)
        sched = HeuristicScheduler(cl)
        with pytest.raises(ValueError):
            SimEngine(cl, [job], sched, max_preemptions_per_task=0)
        with pytest.raises(ValueError):
            SimEngine(cl, [job], sched, view_queue_limit=0)
        with pytest.raises(ValueError):
            SimEngine(cl, [job], sched, stall_timeout=0.0)


class TestArrivalsAndRounds:
    def test_late_job_waits_for_round(self):
        cl = one_lane_cluster(2)
        j1 = Job.from_tasks("J", [mk("a")], deadline=1e6)
        t = mk("K.b", job="K")
        j2 = Job(job_id="K", tasks={"K.b": t}, deadline=1e6, arrival_time=3.0)
        sched = HeuristicScheduler(cl)
        eng = SimEngine(
            cl, [j1, j2], sched,
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        m = eng.run()
        assert m.tasks_completed == 2
        # J2 arrives at 3; the next round is at 10 -> it cannot finish
        # before 10 + 2.
        assert m.makespan >= 12.0 - 1e-6

    def test_task_deadline_override(self):
        cl = one_lane_cluster(1)
        job = Job.from_tasks("J", [mk("a")], deadline=100.0)
        sched = HeuristicScheduler(cl)
        eng = SimEngine(
            cl, [job], sched, task_deadlines={"a": 55.0},
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        eng.run()
        assert eng._tasks["a"].deadline == 55.0
