"""Coverage for error paths and cross-feature interactions not exercised
elsewhere: scheduler-contract violations, baseline policies under faults,
figure metric completeness, and CLI fig7/fig8 paths."""

import pytest

from repro.baselines import SRPTPreemption
from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler, Schedule, TaskAssignment
from repro.dag import Job, Task, layered_random_dag
from repro.sim import FaultEvent, FaultKind, SimEngine, SimulationError


def mk(tid: str, size=2000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5))


class TestSchedulerContract:
    def test_incomplete_plan_rejected(self):
        """A scheduler that forgets a task is a bug the engine must name."""

        class Forgetful:
            respects_dependencies = True

            def schedule(self, jobs):
                job = jobs[0]
                tid = next(iter(job.tasks))
                return Schedule({tid: TaskAssignment(tid, "n0", 0.0, 1.0)})

        cl = Cluster([NodeSpec(node_id="n0", cpu_size=4.0, mem_size=4.0,
                               mips_per_unit=250.0)])
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=1e6)
        eng = SimEngine(cl, [job], Forgetful(),
                        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0))
        with pytest.raises(SimulationError, match="unassigned"):
            eng.run()

    def test_unknown_node_in_plan_fails_loudly(self):
        class WrongNode:
            respects_dependencies = True

            def schedule(self, jobs):
                return Schedule({
                    tid: TaskAssignment(tid, "ghost", 0.0, 1.0)
                    for job in jobs for tid in job.tasks
                })

        cl = Cluster([NodeSpec(node_id="n0", cpu_size=4.0, mem_size=4.0,
                               mips_per_unit=250.0)])
        job = Job.from_tasks("J", [mk("a")], deadline=1e6)
        eng = SimEngine(cl, [job], WrongNode(),
                        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0))
        with pytest.raises(KeyError):
            eng.run()


class TestBaselinesUnderFaults:
    def test_srpt_with_failures_terminates(self):
        """No-checkpoint preemption + node failures is the nastiest combo;
        every task must still complete."""
        cl = uniform_cluster(3, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        tasks = layered_random_dag("J", 12, rng=5)
        job = Job.from_tasks("J", tasks, deadline=1e9)
        faults = [
            FaultEvent(2.0, "node-00", FaultKind.FAILURE),
            FaultEvent(20.0, "node-00", FaultKind.RECOVERY),
            FaultEvent(5.0, "node-01", FaultKind.SLOWDOWN, 0.4),
            FaultEvent(25.0, "node-01", FaultKind.RESTORE),
        ]
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl), preemption=SRPTPreemption(),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
            faults=faults,
        )
        m = eng.run()
        assert m.tasks_completed == 12
        assert m.num_node_failures == 1


class TestFigureMetricCompleteness:
    def test_fig6_contains_all_series_metrics(self):
        from repro.experiments import fig6_fig7_preemption

        fig = fig6_fig7_preemption("cluster", job_counts=(4,), scale=100.0, seed=3)
        for method in fig.methods():
            for metric in (
                "makespan", "throughput_tasks_per_ms", "throughput_jobs_per_s",
                "avg_job_waiting", "num_preemptions", "num_disorders",
            ):
                assert metric in fig.series[method], (method, metric)


class TestCliRemainingPaths:
    def test_fig7_tiny(self, capsys):
        from repro.cli import main

        rc = main(["fig7", "--jobs", "3", "--scale", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Number of preemptions" in out

    def test_fig8_tiny(self, capsys):
        from repro.cli import main

        rc = main(["fig8", "--jobs", "4", "--scale", "120"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Real cluster" in out and "Amazon EC2" in out


class TestAnalysisOnPreemptionRun:
    def test_report_after_preemptive_run(self):
        from repro.core import DSPPreemption
        from repro.experiments import analysis_report

        cl = uniform_cluster(1, cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        job = Job.from_tasks(
            "J", [mk("a", size=5000.0), mk("b", size=500.0)], deadline=1e6
        )
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl), preemption=DSPPreemption(),
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
        )
        eng.run()
        text = analysis_report(eng)
        assert "fairness" in text
