"""Incremental scheduling cores (``sim/sched_core.py`` and
``sim/arraycore.py``): exactness + parity.

Three layers of assurance, each parametrized over both scoring seams —
the per-task memoizing :class:`~repro.sim.sched_core.PriorityIndex`
(``SimConfig.sched_index``) and the struct-of-arrays
:class:`~repro.sim.arraycore.ArrayCore` (``SimConfig.array_core``):

* **Property test** — seeded runs (random layered DAG workloads × random
  fault/preemption event streams under DSP + resilience) with a wildcard
  bus hook that, after *every* bus event, compares the seam's scores for
  all live tasks against a fresh stateless
  :meth:`repro.core.priority.PriorityEvaluator.compute` — exact float
  equality, no tolerance.  This is the empirical proof that the
  event-driven invalidation/mirroring catalog covers every mutation path.
* **Knob parity** — ``sched_index`` and ``array_core`` on/off produce a
  byte-identical event stream, trace and metrics on a faulty resilient
  run (the knobs are pure performance switches, like ``views_cache``),
  and a crash/restore with either seam replays to identical results (the
  restore path rebuilds the seam from objects and asserts equivalence).
* **Adoption guard** — a :class:`~repro.core.preemption.DSPPreemption`
  configured with different Eq. 12–13 parameters than the engine must
  *not* adopt the engine's seam, and one with matching parameters must.
"""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import DSPConfig, ResilienceConfig, SimConfig, SnapshotConfig
from repro.core import HeuristicScheduler
from repro.core.preemption import DSPPreemption
from repro.core.priority import PriorityEvaluator
from repro.dag import Job, Task
from repro.dag.task import TaskState
from repro.experiments.harness import (
    build_workload_for_cluster,
    compute_level_deadlines,
)
from repro.sim import (
    PriorityIndex,
    SimEngine,
    SimulatedCrash,
    inject_crash,
    latest_valid_snapshot,
    random_fault_plan,
)
from repro.sim.arraycore import ArrayCore


def _small_cluster(n: int = 4) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=2.0, mem_size=2.0, mips_per_unit=400.0)
        for i in range(n)
    ])


def _diamond_jobs() -> list[Job]:
    jobs = []
    for j in range(3):
        tasks = [
            Task(
                task_id=f"J{j}.a", job_id=f"J{j}", size_mi=8000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
            ),
            Task(
                task_id=f"J{j}.b", job_id=f"J{j}", size_mi=6000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
            ),
            Task(
                task_id=f"J{j}.c", job_id=f"J{j}", size_mi=4000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
                parents=(f"J{j}.a", f"J{j}.b"),
            ),
        ]
        jobs.append(Job.from_tasks(f"J{j}", tasks, deadline=1e6))
    return jobs


def _sim_cfg(*, array_core: bool = True, sched_index: bool = True) -> SimConfig:
    """Explicit knobs so tests are immune to the ``REPRO_ARRAY_CORE``
    environment default (the CI matrix runs one leg with it off)."""
    return SimConfig(
        epoch=2.0,
        scheduling_period=20.0,
        array_core=array_core,
        sched_index=sched_index,
    )


def _chaos_inputs(seed: int, cfg: DSPConfig):
    """Workload/cluster/deadlines/faults for a seed-fixed chaos run (shared
    by the engine builder and the restore test, which must rebuild the same
    inputs for the recovered engine)."""
    cluster = _small_cluster()
    workload = build_workload_for_cluster(
        3, cluster, scale=10.0, seed=seed, config=cfg, demand_fraction=0.8
    )
    deadlines = compute_level_deadlines(workload, cluster, cfg)
    faults = random_fault_plan(
        cluster, horizon=400.0, rng=seed, mtbf=120.0, mttr=40.0,
        straggler_rate=0.5, task_fail_rate=0.5,
    )
    return cluster, workload, deadlines, faults


def _faulty_engine(seed: int, cfg: DSPConfig, **engine_kwargs) -> SimEngine:
    """A seed-fixed DSP run over a random layered workload with node
    failures, stragglers, task kills and the resilience layer active —
    the densest event stream the simulator produces."""
    cluster, workload, deadlines, faults = _chaos_inputs(seed, cfg)
    return SimEngine(
        cluster,
        workload.jobs,
        HeuristicScheduler(cluster),
        preemption=DSPPreemption(cfg),
        dsp_config=cfg,
        sim_config=engine_kwargs.pop("sim_config", _sim_cfg()),
        task_deadlines=deadlines,
        faults=faults,
        resilience=ResilienceConfig(max_attempts=12),
        **engine_kwargs,
    )


# --------------------------------------------------- index-vs-stateless
class TestIndexMatchesStateless:
    @pytest.mark.parametrize("array_core", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_exact_after_every_event(self, seed: int, array_core: bool):
        """After every bus event, the scoring seam (ArrayCore or
        PriorityIndex) == a fresh stateless evaluation over live signals,
        bit for bit."""
        cfg = DSPConfig()
        engine = _faulty_engine(
            seed, cfg, sim_config=_sim_cfg(array_core=array_core)
        )
        rt = engine.runtime
        state = rt.state
        index = rt.sched
        assert isinstance(index, ArrayCore if array_core else PriorityIndex)
        evaluator = PriorityEvaluator(cfg, state.static_tasks)
        checks = 0

        def check(_event) -> None:
            nonlocal checks
            now = rt.now
            completed = [
                tid
                for tid, task in state.tasks.items()
                if task.state is TaskState.COMPLETED
            ]
            done = set(completed)
            live = [tid for tid in state.tasks if tid not in done]
            if not live:
                return
            remaining = {tid: state.remaining_time(tid, now) for tid in live}
            waiting = {
                tid: state.tasks[tid].waiting_time_at(now) for tid in live
            }
            allowable = {
                tid: state.tasks[tid].deadline - now - remaining[tid]
                for tid in live
            }
            expected = evaluator.compute(
                remaining, waiting, allowable, completed=completed
            )
            got = index.priorities(live)
            assert got == expected  # exact float equality
            checks += 1

        # Wildcard subscribers run after every typed subscriber of the
        # same event, so the hook always observes post-invalidation state.
        rt.bus.subscribe_all(check)
        engine.run()
        assert checks > 100, "run produced too few events to be meaningful"
        assert index.invalidations > 0
        assert index.clears > 0
        assert index.hits > 0

    @pytest.mark.parametrize("array_core", [True, False])
    def test_exact_on_handcrafted_diamond(self, array_core: bool):
        """Same property on the hand-built diamond workload (shared
        parents, exercised by the kernel determinism suite)."""
        cfg = DSPConfig()
        cluster = _small_cluster()
        faults = random_fault_plan(
            cluster, horizon=400.0, rng=11, mtbf=120.0, mttr=40.0,
            straggler_rate=0.5, task_fail_rate=0.5,
        )
        engine = SimEngine(
            cluster,
            _diamond_jobs(),
            HeuristicScheduler(cluster),
            preemption=DSPPreemption(cfg),
            dsp_config=cfg,
            sim_config=_sim_cfg(array_core=array_core),
            faults=faults,
            resilience=ResilienceConfig(),
        )
        rt = engine.runtime
        evaluator = PriorityEvaluator(cfg, rt.state.static_tasks)
        checks = 0

        def check(_event) -> None:
            nonlocal checks
            now = rt.now
            state = rt.state
            completed = [
                tid
                for tid, task in state.tasks.items()
                if task.state is TaskState.COMPLETED
            ]
            done = set(completed)
            live = [tid for tid in state.tasks if tid not in done]
            if not live:
                return
            expected = evaluator.compute(
                {tid: state.remaining_time(tid, now) for tid in live},
                {tid: state.tasks[tid].waiting_time_at(now) for tid in live},
                {
                    tid: state.tasks[tid].deadline
                    - now
                    - state.remaining_time(tid, now)
                    for tid in live
                },
                completed=completed,
            )
            assert rt.sched.priorities(live) == expected
            checks += 1

        rt.bus.subscribe_all(check)
        engine.run()
        assert checks > 0


# ------------------------------------------------------------ knob parity
def _recorded_run(seed: int, *, sched_index: bool = True, array_core: bool):
    engine = _faulty_engine(
        seed,
        DSPConfig(),
        sim_config=_sim_cfg(array_core=array_core, sched_index=sched_index),
        record_trace=True,
    )
    stream: list[str] = []
    engine.runtime.bus.subscribe_all(lambda ev: stream.append(repr(ev)))
    metrics = engine.run()
    return stream, engine.trace.segments, metrics.as_dict()


class TestCoreKnobs:
    def test_sched_index_on_off_byte_identical(self):
        s_on, t_on, m_on = _recorded_run(7, sched_index=True, array_core=False)
        s_off, t_off, m_off = _recorded_run(
            7, sched_index=False, array_core=False
        )
        assert "\n".join(s_on) == "\n".join(s_off)
        assert t_on == t_off
        assert m_on == m_off

    def test_array_core_on_off_byte_identical(self):
        """The headline acceptance property: the vectorized array path and
        the object path produce the same simulation, byte for byte."""
        s_on, t_on, m_on = _recorded_run(7, array_core=True)
        s_off, t_off, m_off = _recorded_run(7, array_core=False)
        assert "\n".join(s_on) == "\n".join(s_off)
        assert t_on == t_off
        assert m_on == m_off

    def test_knob_wiring(self):
        arr = _faulty_engine(0, DSPConfig(), sim_config=_sim_cfg())
        assert isinstance(arr.runtime.sched, ArrayCore)
        assert arr.runtime.array is arr.runtime.sched
        idx = _faulty_engine(
            0, DSPConfig(), sim_config=_sim_cfg(array_core=False)
        )
        assert isinstance(idx.runtime.sched, PriorityIndex)
        assert idx.runtime.array is None
        off = _faulty_engine(
            0,
            DSPConfig(),
            sim_config=_sim_cfg(array_core=False, sched_index=False),
        )
        assert off.runtime.sched is None
        assert off.runtime.array is None

    def test_array_core_default_follows_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARRAY_CORE", raising=False)
        assert SimConfig().array_core is True
        monkeypatch.setenv("REPRO_ARRAY_CORE", "0")
        assert SimConfig().array_core is False
        monkeypatch.setenv("REPRO_ARRAY_CORE", "1")
        assert SimConfig().array_core is True


# ------------------------------------------------- crash/restore rebuild
class TestRestoreRebuild:
    @pytest.mark.parametrize("array_core", [True, False])
    def test_crash_resume_rebuilds_seam(self, tmp_path, array_core: bool):
        """A run crashed mid-flight and recovered from the latest snapshot
        replays to identical metrics and a byte-identical journal; the
        restore path rebuilds the scoring seam from restored objects and
        asserts it equivalent (``rebuild_and_assert`` for the array core,
        ``_rebuild_priority_index`` for the index)."""
        cfg = DSPConfig()
        seed = 5

        def build(path, **kw):
            cluster, workload, deadlines, faults = _chaos_inputs(seed, cfg)
            return SimEngine(
                cluster,
                workload.jobs,
                HeuristicScheduler(cluster),
                preemption=DSPPreemption(cfg),
                dsp_config=cfg,
                sim_config=_sim_cfg(array_core=array_core),
                task_deadlines=deadlines,
                faults=faults,
                resilience=ResilienceConfig(max_attempts=12),
                journal=path / "run.journal",
                snapshots=SnapshotConfig(
                    directory=str(path / "snaps"), every_events=200
                ),
                **kw,
            )

        ref = build(tmp_path / "ref")
        ref_metrics = ref.run().as_dict()
        total = ref.runtime.kernel.pops

        crashed = build(tmp_path / "rec")
        inject_crash(crashed, at_pop=total // 2)
        with pytest.raises(SimulatedCrash):
            crashed.run()
        found = latest_valid_snapshot(tmp_path / "rec" / "snaps")
        assert found is not None
        _, data = found

        cluster, workload, deadlines, faults = _chaos_inputs(seed, cfg)
        resumed = SimEngine.restore(
            data,
            cluster,
            workload.jobs,
            HeuristicScheduler(cluster),
            preemption=DSPPreemption(cfg),
            dsp_config=cfg,
            sim_config=_sim_cfg(array_core=array_core),
            task_deadlines=deadlines,
            faults=faults,
            resilience=ResilienceConfig(max_attempts=12),
            journal=tmp_path / "rec" / "run.journal",
            snapshots=SnapshotConfig(
                directory=str(tmp_path / "rec" / "snaps"), every_events=200
            ),
        )
        assert (resumed.runtime.array is not None) is array_core
        assert resumed.run().as_dict() == ref_metrics
        ref_journal = (tmp_path / "ref" / "run.journal").read_bytes()
        rec_journal = (tmp_path / "rec" / "run.journal").read_bytes()
        assert rec_journal == ref_journal


# -------------------------------------------------------- adoption guard
class TestPolicyAdoption:
    @pytest.mark.parametrize("array_core", [True, False])
    def test_matching_config_adopts_seam(self, array_core: bool):
        cfg = DSPConfig()
        engine = _faulty_engine(
            0, cfg, sim_config=_sim_cfg(array_core=array_core)
        )
        policy = engine.runtime.policy
        assert policy._index is engine.runtime.sched
        assert isinstance(
            policy._index, ArrayCore if array_core else PriorityIndex
        )

    @pytest.mark.parametrize("array_core", [True, False])
    def test_mismatched_config_falls_back(self, array_core: bool):
        """A policy scoring with different omegas than the engine keeps
        its stateless evaluator (the engine's seam would give wrong
        scores)."""
        engine_cfg = DSPConfig()
        policy_cfg = DSPConfig(
            omega_remaining=0.2, omega_waiting=0.3, omega_allowable=0.5
        )
        cluster = _small_cluster()
        engine = SimEngine(
            cluster,
            _diamond_jobs(),
            HeuristicScheduler(cluster),
            preemption=DSPPreemption(policy_cfg),
            dsp_config=engine_cfg,
            sim_config=_sim_cfg(array_core=array_core),
        )
        policy = engine.runtime.policy
        assert policy._index is None
        assert policy._evaluator is not None
        engine.run()  # still completes on the fallback path

    def test_seams_disabled_falls_back(self):
        engine = _faulty_engine(
            0,
            DSPConfig(),
            sim_config=_sim_cfg(array_core=False, sched_index=False),
        )
        assert engine.runtime.policy._index is None
        engine.run()


# ------------------------------------- stateless fallback self-consistency
class TestComputeForFallback:
    def test_compute_for_matches_compute(self):
        """Regression guard for the single-pass DFS rewrite: the lazy
        per-subgraph entry point must agree exactly with the full pass,
        including with completed tasks pruned from the live sets."""
        cfg = DSPConfig()
        cluster = _small_cluster()
        workload = build_workload_for_cluster(
            3, cluster, scale=10.0, seed=3, config=cfg, demand_fraction=0.8
        )
        tasks = {
            tid: task for job in workload.jobs for tid, task in job.tasks.items()
        }
        evaluator = PriorityEvaluator(cfg, tasks)
        ids = sorted(tasks)
        # Mark every third task with no incomplete parents as completed.
        completed: set[str] = set()
        for i, tid in enumerate(ids):
            if i % 3 == 0 and all(p in completed for p in tasks[tid].parents):
                completed.add(tid)
        live = [tid for tid in ids if tid not in completed]
        remaining = {tid: 5.0 + (i % 7) for i, tid in enumerate(live)}
        waiting = {tid: float(i % 5) for i, tid in enumerate(live)}
        allowable = {tid: 50.0 - (i % 11) for i, tid in enumerate(live)}
        full = evaluator.compute(remaining, waiting, allowable, completed)
        lazy = evaluator.compute_for(
            live,
            remaining_fn=remaining.__getitem__,
            waiting_fn=waiting.__getitem__,
            allowable_fn=allowable.__getitem__,
            completed_fn=completed.__contains__,
        )
        assert lazy == full
