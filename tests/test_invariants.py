"""Tests for the runtime invariant checker (:mod:`repro.sim.invariants`):
mode wiring, clean runs under chaos, the C2 audit catching a deliberately
broken policy, and end-of-run metrics consistency."""

import dataclasses

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import ResilienceConfig, SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    FaultEvent,
    FaultKind,
    InvariantViolation,
    NodeView,
    PreemptionDecision,
    PreemptionPolicy,
    SimEngine,
)


def mk(tid: str, size=5000.0, parents=()) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5),
                parents=frozenset(parents))


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def build(cluster, jobs, *, invariants="strict", faults=None, policy=None,
          resilience=None, **kw):
    return SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        preemption=policy,
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                             invariants=invariants),
        faults=faults, resilience=resilience, **kw,
    )


class C2Violator(PreemptionPolicy):
    """Deliberately broken policy: claims to respect dependencies but
    preempts a running task with one of its own descendants — exactly the
    C2 violation (Algorithm 1) the checker must catch."""

    respects_dependencies = True
    uses_checkpointing = True
    name = "c2-violator"

    def select_preemptions(self, view: NodeView):
        for waiting in view.waiting:
            for ancestor in waiting.depends_on_running:
                return [PreemptionDecision(waiting.task_id, ancestor)]
        return []


def chain_job() -> Job:
    return Job.from_tasks(
        "J", [mk("p", size=5000.0), mk("c", size=1000.0, parents=("p",))],
        deadline=1e6,
    )


class TestWiring:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="invariants"):
            SimConfig(invariants="sometimes")

    def test_off_attaches_nothing(self):
        eng = build(one_lane(1), [Job.from_tasks("J", [mk("t0")], deadline=1e6)],
                    invariants="off")
        assert eng.invariants is None

    @pytest.mark.parametrize("mode", ["record", "strict"])
    def test_checker_attached(self, mode):
        eng = build(one_lane(1), [Job.from_tasks("J", [mk("t0")], deadline=1e6)],
                    invariants=mode)
        assert eng.invariants is not None


class TestCleanRuns:
    FAULTS = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.5),
              FaultEvent(4.0, "n0", FaultKind.RESTORE),
              FaultEvent(5.0, "n1", FaultKind.FAILURE),
              FaultEvent(20.0, "n1", FaultKind.RECOVERY),
              FaultEvent(6.0, "n0", FaultKind.TASK_FAIL),
              FaultEvent(25.0, "n1", FaultKind.PARTITION),
              FaultEvent(32.0, "n1", FaultKind.HEAL)]

    def test_strict_clean_run_passes(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(6)], deadline=1e6)
        eng = build(cl, [job], faults=self.FAULTS,
                    resilience=ResilienceConfig(backoff_base=0.5))
        m = eng.run()
        assert m.tasks_completed == 6

    def test_record_mode_collects_nothing_on_clean_run(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(6)], deadline=1e6)
        eng = build(cl, [job], invariants="record", faults=self.FAULTS)
        eng.run()
        assert eng.invariants.violations == ()

    def test_checker_observed_the_run(self):
        cl = one_lane(1)
        eng = build(cl, [Job.from_tasks("J", [mk("t0")], deadline=1e6)])
        eng.run()
        counts = eng.invariants.event_counts()
        assert counts.get("TaskStarted") == 1
        assert counts.get("TaskFinished") == 1

    def test_strict_and_off_metrics_identical(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(6)], deadline=1e6)
        on = build(cl, [job], faults=self.FAULTS).run()
        off = build(cl, [job], invariants="off", faults=self.FAULTS).run()
        assert on == off


class TestC2Audit:
    def test_strict_raises_on_broken_policy(self):
        # dependency_aware_dispatch=False lets the broken decision reach
        # execution (aware dispatch would refuse the non-runnable child).
        eng = build(one_lane(1), [chain_job()], policy=C2Violator(),
                    dependency_aware_dispatch=False)
        with pytest.raises(InvariantViolation) as exc:
            eng.run()
        assert exc.value.name == "c2-dependency-preemption"
        assert "ancestor" in str(exc.value)
        # The exception carries the offending event and recent history.
        assert exc.value.event is not None
        assert exc.value.history

    def test_record_mode_collects_and_continues(self):
        eng = build(one_lane(1), [chain_job()], policy=C2Violator(),
                    invariants="record", dependency_aware_dispatch=False)
        m = eng.run()
        assert m.tasks_completed == 2  # run survived to completion
        names = {v.name for v in eng.invariants.violations}
        assert "c2-dependency-preemption" in names

    def test_dependency_blind_policy_exempt(self):
        # A policy that *declares* itself dependency-blind makes no C2
        # promise, so the same eviction is not a violation.
        class BlindViolator(C2Violator):
            respects_dependencies = False
            uses_checkpointing = False
            name = "blind"

        eng = build(one_lane(1), [chain_job()], policy=BlindViolator(),
                    invariants="record", dependency_aware_dispatch=False)
        m = eng.run()
        assert m.tasks_completed == 2
        assert all(v.name != "c2-dependency-preemption"
                   for v in eng.invariants.violations)


class TestMetricsConsistency:
    def test_verify_run_accepts_real_metrics(self):
        eng = build(one_lane(1), [Job.from_tasks("J", [mk("t0")], deadline=1e6)])
        m = eng.run()  # run() already called verify_run without raising
        eng.invariants.verify_run(m)  # idempotent on honest metrics

    def test_verify_run_rejects_doctored_metrics(self):
        eng = build(one_lane(1), [Job.from_tasks("J", [mk("t0")], deadline=1e6)])
        m = eng.run()
        forged = dataclasses.replace(m, tasks_completed=m.tasks_completed + 1)
        with pytest.raises(InvariantViolation) as exc:
            eng.invariants.verify_run(forged)
        assert exc.value.name == "metrics-consistency"
