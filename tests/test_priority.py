"""Tests for the dependency-aware priority (Eq. 12–13)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import DSPConfig
from repro.core import PriorityEvaluator, leaf_priority
from repro.dag import Task, layered_random_dag, paper_figure2_dag, paper_figure3_dag


def mk(tid: str, parents=()) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=1000.0, parents=tuple(parents))


def const_signals(tasks, remaining=10.0, waiting=0.0, allowable=0.0):
    ids = list(tasks)
    return (
        {t: remaining for t in ids},
        {t: waiting for t in ids},
        {t: allowable for t in ids},
    )


class TestLeafPriority:
    def test_eq13_formula(self):
        cfg = DSPConfig()
        # P = 0.5/t_rem + 0.3 t_w + 0.2 t_a
        p = leaf_priority(cfg, remaining=2.0, waiting=10.0, allowable=5.0)
        assert p == pytest.approx(0.5 / 2.0 + 0.3 * 10.0 + 0.2 * 5.0)

    def test_shorter_remaining_higher_priority(self):
        cfg = DSPConfig()
        assert leaf_priority(cfg, 1.0, 0.0, 0.0) > leaf_priority(cfg, 10.0, 0.0, 0.0)

    def test_longer_waiting_higher_priority(self):
        cfg = DSPConfig()
        assert leaf_priority(cfg, 5.0, 20.0, 0.0) > leaf_priority(cfg, 5.0, 1.0, 0.0)

    def test_zero_remaining_finite(self):
        p = leaf_priority(DSPConfig(), 0.0, 0.0, 0.0)
        assert p > 0 and p < float("inf")

    def test_negative_allowable_lowers(self):
        cfg = DSPConfig()
        assert leaf_priority(cfg, 5.0, 0.0, -10.0) < leaf_priority(cfg, 5.0, 0.0, 0.0)

    def test_negative_remaining_rejected(self):
        with pytest.raises(ValueError):
            leaf_priority(DSPConfig(), -1.0, 0.0, 0.0)

    @given(
        r=st.floats(min_value=0.01, max_value=1e4),
        w=st.floats(min_value=0.0, max_value=1e4),
        a=st.floats(min_value=-1e4, max_value=1e4),
    )
    def test_monotonicity_properties(self, r, w, a):
        cfg = DSPConfig()
        base = leaf_priority(cfg, r, w, a)
        assert leaf_priority(cfg, r, w + 1.0, a) > base          # waiting up
        assert leaf_priority(cfg, r + 1.0, w, a) < base          # remaining up
        assert leaf_priority(cfg, r, w, a + 1.0) > base          # slack up


class TestEq12Recursion:
    def test_parent_sums_children(self):
        tasks = {t.task_id: t for t in [mk("p"), mk("c1", ["p"]), mk("c2", ["p"])]}
        cfg = DSPConfig(gamma=0.5)
        ev = PriorityEvaluator(cfg, tasks)
        rem, wait, allow = const_signals(tasks, remaining=10.0)
        pri = ev.compute(rem, wait, allow)
        leaf = leaf_priority(cfg, 10.0, 0.0, 0.0)
        assert pri["c1"] == pytest.approx(leaf)
        assert pri["p"] == pytest.approx(1.5 * (pri["c1"] + pri["c2"]))

    def test_two_level_recursion(self):
        tasks = {
            t.task_id: t
            for t in [mk("r"), mk("m", ["r"]), mk("l1", ["m"]), mk("l2", ["m"])]
        }
        cfg = DSPConfig(gamma=0.5)
        ev = PriorityEvaluator(cfg, tasks)
        pri = ev.compute(*const_signals(tasks))
        assert pri["m"] == pytest.approx(1.5 * (pri["l1"] + pri["l2"]))
        assert pri["r"] == pytest.approx(1.5 * pri["m"])

    def test_more_dependents_higher_priority(self):
        tasks = {
            t.task_id: t
            for t in [
                mk("few"), mk("f1", ["few"]),
                mk("many"), mk("m1", ["many"]), mk("m2", ["many"]), mk("m3", ["many"]),
            ]
        }
        ev = PriorityEvaluator(DSPConfig(), tasks)
        pri = ev.compute(*const_signals(tasks))
        assert pri["many"] > pri["few"]

    def test_completed_children_excluded(self):
        tasks = {t.task_id: t for t in [mk("p"), mk("c1", ["p"]), mk("c2", ["p"])]}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        rem, wait, allow = const_signals(tasks)
        full = ev.compute(rem, wait, allow)
        partial = ev.compute(rem, wait, allow, completed=["c2"])
        assert partial["p"] < full["p"]
        assert "c2" not in partial

    def test_all_children_completed_makes_leaf(self):
        tasks = {t.task_id: t for t in [mk("p"), mk("c", ["p"])]}
        cfg = DSPConfig()
        ev = PriorityEvaluator(cfg, tasks)
        rem, wait, allow = const_signals(tasks, remaining=4.0)
        pri = ev.compute(rem, wait, allow, completed=["c"])
        assert pri["p"] == pytest.approx(leaf_priority(cfg, 4.0, 0.0, 0.0))


class TestPaperFigureOrdering:
    def test_fig3_t11_highest(self):
        """The Fig. 3 argument: T11 > T6 > T1 despite equal direct fan-out."""
        tasks = {t.task_id: t for t in paper_figure3_dag()}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        pri = ev.compute(*const_signals(tasks))
        t1, t6, t11 = pri["fig3.T0001"], pri["fig3.T0006"], pri["fig3.T0011"]
        assert t11 > t6 > t1

    def test_fig2_root_highest(self):
        """Fig. 2: T1 gates everything, so it must outrank all others."""
        tasks = {t.task_id: t for t in paper_figure2_dag()}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        pri = ev.compute(*const_signals(tasks))
        t1 = pri["fig2.T0001"]
        assert all(t1 > v for k, v in pri.items() if k != "fig2.T0001")

    def test_fig2_middle_above_leaves(self):
        tasks = {t.task_id: t for t in paper_figure2_dag()}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        pri = ev.compute(*const_signals(tasks))
        assert pri["fig2.T0002"] > pri["fig2.T0004"]
        assert pri["fig2.T0003"] > pri["fig2.T0006"]


class TestComputeFor:
    def test_matches_full_compute(self):
        tasks = {t.task_id: t for t in layered_random_dag("J", 40, rng=8)}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        rem, wait, allow = const_signals(tasks, remaining=7.0, waiting=3.0)
        full = ev.compute(rem, wait, allow)
        lazy = ev.compute_for(
            list(tasks),
            remaining_fn=rem.__getitem__,
            waiting_fn=wait.__getitem__,
            allowable_fn=allow.__getitem__,
            completed_fn=lambda t: False,
        )
        for tid in tasks:
            assert lazy[tid] == pytest.approx(full[tid])

    def test_subset_only_touches_descendants(self):
        tasks = {t.task_id: t for t in [mk("a"), mk("b", ["a"]), mk("z")]}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        seen = []

        def rem(t):
            seen.append(t)
            return 1.0

        ev.compute_for(["z"], rem, lambda t: 0.0, lambda t: 0.0, lambda t: False)
        assert seen == ["z"]  # a, b never evaluated

    def test_completed_respected(self):
        tasks = {t.task_id: t for t in [mk("p"), mk("c", ["p"])]}
        cfg = DSPConfig()
        ev = PriorityEvaluator(cfg, tasks)
        out = ev.compute_for(
            ["p"],
            remaining_fn=lambda t: 4.0,
            waiting_fn=lambda t: 0.0,
            allowable_fn=lambda t: 0.0,
            completed_fn=lambda t: t == "c",
        )
        assert out["p"] == pytest.approx(leaf_priority(cfg, 4.0, 0.0, 0.0))


class TestGammaEffect:
    def test_higher_gamma_boosts_ancestors_more(self):
        tasks = {t.task_id: t for t in [mk("p"), mk("c", ["p"])]}
        rem, wait, allow = const_signals(tasks)
        lo = PriorityEvaluator(DSPConfig(gamma=0.1), tasks).compute(rem, wait, allow)
        hi = PriorityEvaluator(DSPConfig(gamma=0.9), tasks).compute(rem, wait, allow)
        assert hi["p"] / hi["c"] > lo["p"] / lo["c"]

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_parents_outrank_single_child(self, seed):
        """With uniform leaf signals, any parent outranks each child
        individually (gamma + 1 > 1 and sums are non-negative)."""
        tasks = {t.task_id: t for t in layered_random_dag("J", 25, rng=seed)}
        ev = PriorityEvaluator(DSPConfig(), tasks)
        pri = ev.compute(*const_signals(tasks, remaining=5.0, waiting=1.0, allowable=2.0))
        for tid in tasks:
            for child in ev.children_of(tid):
                assert pri[tid] > pri[child] * 1.0 or pri[tid] >= pri[child]
