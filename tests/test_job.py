"""Tests for the Job model."""

import pytest

from repro.dag import Job, Task, chain_dag, diamond_dag


def mk(tid: str, job: str = "J1", parents: tuple[str, ...] = (), size: float = 1000.0) -> Task:
    return Task(task_id=tid, job_id=job, size_mi=size, parents=parents)


class TestJobValidation:
    def test_basic(self):
        job = Job.from_tasks("J1", [mk("a")], deadline=10.0)
        assert job.num_tasks == 1

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError, match="at least one task"):
            Job(job_id="J1", tasks={}, deadline=10.0)

    def test_wrong_job_id_on_task_rejected(self):
        with pytest.raises(ValueError, match="belongs to job"):
            Job.from_tasks("J1", [mk("a", job="OTHER")], deadline=10.0)

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError, match="task key"):
            Job(job_id="J1", tasks={"x": mk("a")}, deadline=10.0)

    def test_deadline_after_arrival(self):
        with pytest.raises(ValueError, match="deadline"):
            Job.from_tasks("J1", [mk("a")], deadline=5.0, arrival_time=10.0)

    def test_cycle_rejected(self):
        tasks = [mk("a", parents=("b",)), mk("b", parents=("a",))]
        with pytest.raises(Exception):
            Job.from_tasks("J1", tasks, deadline=10.0)

    def test_unknown_parent_rejected(self):
        with pytest.raises(Exception):
            Job.from_tasks("J1", [mk("a", parents=("ghost",))], deadline=10.0)


class TestJobStructure:
    @pytest.fixture
    def job(self) -> Job:
        return Job.from_tasks("J1", diamond_dag("J1", size_mi=1000.0), deadline=100.0)

    def test_depth(self, job):
        assert job.depth == 3

    def test_levels(self, job):
        levels = job.levels
        assert levels["J1.T0000"] == 1
        assert levels["J1.T0003"] == 3

    def test_roots_and_sinks(self, job):
        assert job.roots() == ["J1.T0000"]
        assert job.sinks() == ["J1.T0003"]

    def test_children(self, job):
        assert set(job.children["J1.T0000"]) == {"J1.T0001", "J1.T0002"}

    def test_topo_order_parents_first(self, job):
        order = job.topo_order
        assert order.index("J1.T0000") < order.index("J1.T0001")
        assert order.index("J1.T0001") < order.index("J1.T0003")

    def test_chains(self, job):
        assert len(job.chains()) == 2

    def test_total_work(self, job):
        assert job.total_work_mi() == pytest.approx(4000.0)

    def test_critical_path_time(self, job):
        # 3 tasks on the critical path, 1 s each at 1000 MIPS.
        assert job.critical_path_time(1000.0) == pytest.approx(3.0)

    def test_len_and_iter(self, job):
        assert len(job) == 4
        assert {t.task_id for t in job} == set(job.tasks)

    def test_chain_job_depth(self):
        job = Job.from_tasks("J2", chain_dag("J2", length=5), deadline=100.0)
        assert job.depth == 5
        assert len(job.level_lists) == 5
        assert all(len(lvl) == 1 for lvl in job.level_lists)


class TestJobWeight:
    def test_default_research(self):
        job = Job.from_tasks("J1", [mk("a")], deadline=10.0)
        assert job.weight == 0.0

    def test_production_weight(self):
        job = Job.from_tasks("J1", [mk("a")], deadline=10.0, weight=1.0)
        assert job.weight == 1.0
