"""Tests for DAG generators, including the paper's Fig. 2/3 examples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dag import (
    MAX_DEPENDENTS,
    MAX_LEVELS,
    Job,
    chain_dag,
    compute_levels,
    diamond_dag,
    fork_join_dag,
    inverted_tree_dag,
    layered_random_dag,
    paper_figure2_dag,
    paper_figure3_dag,
    tree_dag,
    validate_acyclic,
)


def as_map(tasks):
    return {t.task_id: t for t in tasks}


class TestChain:
    def test_length(self):
        assert len(chain_dag("j", 5)) == 5

    def test_structure(self):
        tasks = chain_dag("j", 3)
        assert tasks[0].parents == ()
        assert tasks[1].parents == (tasks[0].task_id,)
        assert tasks[2].parents == (tasks[1].task_id,)

    def test_levels(self):
        levels = compute_levels(as_map(chain_dag("j", 4)))
        assert sorted(levels.values()) == [1, 2, 3, 4]

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            chain_dag("j", 0)


class TestForkJoin:
    def test_counts(self):
        tasks = fork_join_dag("j", width=4)
        assert len(tasks) == 6  # source + 4 + sink

    def test_sink_depends_on_all_middle(self):
        tasks = fork_join_dag("j", width=3)
        sink = tasks[-1]
        assert len(sink.parents) == 3

    def test_depth_three(self):
        levels = compute_levels(as_map(fork_join_dag("j", width=5)))
        assert max(levels.values()) == 3


class TestDiamond:
    def test_four_tasks(self):
        assert len(diamond_dag("j")) == 4

    def test_valid(self):
        validate_acyclic(as_map(diamond_dag("j")))


class TestTrees:
    def test_tree_node_count(self):
        # depth 3, branching 2: 1 + 2 + 4 = 7.
        assert len(tree_dag("j", depth=3, branching=2)) == 7

    def test_tree_root_fanout(self):
        tasks = tree_dag("j", depth=2, branching=4)
        root_id = tasks[0].task_id
        children = [t for t in tasks if root_id in t.parents]
        assert len(children) == 4

    def test_branching_cap(self):
        with pytest.raises(ValueError, match="MAX_DEPENDENTS"):
            tree_dag("j", depth=2, branching=MAX_DEPENDENTS + 1)

    def test_inverted_tree_single_sink(self):
        tasks = inverted_tree_dag("j", depth=3, branching=2)
        tmap = as_map(tasks)
        validate_acyclic(tmap)
        sinks = [t for t in tasks if not any(t.task_id in o.parents for o in tasks)]
        assert len(sinks) == 1

    def test_inverted_tree_many_roots(self):
        tasks = inverted_tree_dag("j", depth=3, branching=2)
        roots = [t for t in tasks if t.is_root]
        assert len(roots) == 4  # the leaves of the out-tree


class TestLayeredRandom:
    def test_task_count(self):
        assert len(layered_random_dag("j", 37, rng=0)) == 37

    def test_acyclic(self):
        validate_acyclic(as_map(layered_random_dag("j", 50, rng=1)))

    def test_level_cap(self):
        levels = compute_levels(as_map(layered_random_dag("j", 80, rng=2)))
        assert max(levels.values()) <= MAX_LEVELS

    def test_dependents_cap(self):
        tasks = layered_random_dag("j", 200, rng=3)
        child_count: dict[str, int] = {}
        for t in tasks:
            for p in t.parents:
                child_count[p] = child_count.get(p, 0) + 1
        assert max(child_count.values(), default=0) <= MAX_DEPENDENTS

    def test_deterministic_by_seed(self):
        a = layered_random_dag("j", 30, rng=5)
        b = layered_random_dag("j", 30, rng=5)
        assert [(t.task_id, t.parents) for t in a] == [(t.task_id, t.parents) for t in b]

    def test_custom_samplers(self):
        tasks = layered_random_dag(
            "j", 10, rng=0, size_sampler=lambda g: 42.0,
        )
        assert all(t.size_mi == 42.0 for t in tasks)

    def test_bad_density_rejected(self):
        with pytest.raises(ValueError):
            layered_random_dag("j", 10, rng=0, edge_density=0.0)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_valid_job(self, n, seed):
        """Any generated DAG forms a valid Job within the paper's caps."""
        tasks = layered_random_dag("j", n, rng=seed)
        job = Job.from_tasks("j", tasks, deadline=1e9)
        assert job.num_tasks == n
        assert job.depth <= MAX_LEVELS
        assert all(len(kids) <= MAX_DEPENDENTS for kids in job.children.values())


class TestPaperFigures:
    def test_fig2_structure(self):
        tasks = as_map(paper_figure2_dag())
        assert len(tasks) == 7
        levels = compute_levels(tasks)
        assert max(levels.values()) == 3
        # T2, T3 depend on T1.
        assert tasks["fig2.T0002"].parents == ("fig2.T0001",)
        assert tasks["fig2.T0003"].parents == ("fig2.T0001",)

    def test_fig3_roots(self):
        tasks = as_map(paper_figure3_dag())
        roots = sorted(tid for tid, t in tasks.items() if t.is_root)
        assert roots == ["fig3.T0001", "fig3.T0006", "fig3.T0011"]

    def test_fig3_fanouts(self):
        tasks = paper_figure3_dag()
        tmap = as_map(tasks)
        validate_acyclic(tmap)

        def fanout(tid):
            return sum(1 for t in tasks if tid in t.parents)

        # Each subgraph root has four direct dependents.
        assert fanout("fig3.T0001") == 4
        assert fanout("fig3.T0006") == 4
        assert fanout("fig3.T0011") == 4
        # T6's subtree has 1 second-level dependent, T11's has 2, T1's 0.
        assert fanout("fig3.T0007") == 1
        assert fanout("fig3.T0012") == 1 and fanout("fig3.T0013") == 1


class TestPaperFigure1:
    def test_structure(self):
        from repro.dag import paper_figure1_dag

        tasks = as_map(paper_figure1_dag())
        validate_acyclic(tasks)
        assert len(tasks) == 18
        roots = sorted(t for t, task in tasks.items() if task.is_root)
        assert "fig1.T0001" in roots and "fig1.T0006" in roots and "fig1.T0015" in roots

    def test_t6_is_the_hub(self):
        from repro.dag import paper_figure1_dag

        tasks = paper_figure1_dag()

        def fanout(tid):
            return sum(1 for t in tasks if tid in t.parents)

        assert fanout("fig1.T0006") == 6
        assert fanout("fig1.T0001") == 1
        assert fanout("fig1.T0015") == 3

    def test_priority_prefers_t6(self):
        """§I's claim: executing T6 first enables the most dependent tasks."""
        from repro.config import DSPConfig
        from repro.core import PriorityEvaluator
        from repro.dag import paper_figure1_dag

        tasks = as_map(paper_figure1_dag())
        ev = PriorityEvaluator(DSPConfig(), tasks)
        ids = list(tasks)
        pri = ev.compute(
            {t: 10.0 for t in ids}, {t: 0.0 for t in ids}, {t: 0.0 for t in ids}
        )
        assert pri["fig1.T0006"] > pri["fig1.T0001"]
        assert pri["fig1.T0006"] > pri["fig1.T0015"]
