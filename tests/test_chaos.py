"""Tests for the composable chaos scenarios (:mod:`repro.sim.chaos`):
generator determinism and shape, plan normalization, keep-alive, config
compilation and JSON round-tripping."""

import numpy as np
import pytest

from repro.cluster import Cluster, NodeSpec
from repro.config import ChaosConfig
from repro.sim import (
    CorrelatedFailureDomains,
    FailureBursts,
    FaultEvent,
    FaultKind,
    Partitions,
    StragglerWave,
    TaskFailStorm,
    chaos_plan,
    compile_plan,
    fault_sort_key,
    normalize_plan,
    plan_from_json,
    plan_to_json,
    scenarios_from_config,
    validate_fault_plan,
)


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


HORIZON = 20_000.0


class TestScenarioGeneration:
    @pytest.mark.parametrize("scenario", [
        CorrelatedFailureDomains(domains=2, mtbf=3000.0, mttr=200.0),
        FailureBursts(mtbf=3000.0, mttr=200.0, factor=8.0,
                      burst_every=6000.0, burst_duration=600.0),
        StragglerWave(wave_every=2000.0, fraction=0.5, duration=400.0,
                      factor=0.4),
        TaskFailStorm(storm_every=2500.0, duration=300.0, task_fails=6.0),
        Partitions(mtbf=3000.0, duration=150.0),
    ])
    def test_deterministic_and_valid(self, scenario):
        cl = one_lane(4)
        a = scenario.generate(cl, HORIZON, np.random.default_rng(7))
        b = scenario.generate(cl, HORIZON, np.random.default_rng(7))
        assert a == b
        assert a, "scenario produced no events at these timescales"
        plan = normalize_plan(a, cl)
        assert validate_fault_plan(plan, cl) == []

    def test_correlated_domains_fail_together(self):
        cl = one_lane(6)
        scenario = CorrelatedFailureDomains(domains=2, mtbf=2000.0, mttr=100.0)
        plan = scenario.generate(cl, HORIZON, np.random.default_rng(3))
        failures = [ev for ev in plan if ev.kind is FaultKind.FAILURE]
        assert failures
        by_time: dict[float, set[str]] = {}
        for ev in failures:
            by_time.setdefault(ev.time, set()).add(ev.node_id)
        # Round-robin over 2 domains: every failure instant takes down a
        # whole 3-node domain (all-even or all-odd indices).
        domains = ({"n0", "n2", "n4"}, {"n1", "n3", "n5"})
        for nodes in by_time.values():
            assert nodes in domains

    def test_windows_are_closed_within_horizon(self):
        # Scenarios never strand a node: every FAILURE/SLOWDOWN/PARTITION
        # has its closing event inside the horizon.
        cl = one_lane(4)
        for scenario in (CorrelatedFailureDomains(domains=2, mtbf=1500.0,
                                                  mttr=400.0),
                         Partitions(mtbf=1500.0, duration=400.0)):
            plan = scenario.generate(cl, HORIZON, np.random.default_rng(11))
            opens = {FaultKind.FAILURE: 0, FaultKind.PARTITION: 0}
            for ev in sorted(plan, key=fault_sort_key):
                if ev.kind in opens:
                    opens[ev.kind] += 1
                elif ev.kind is FaultKind.RECOVERY:
                    opens[FaultKind.FAILURE] -= 1
                elif ev.kind is FaultKind.HEAL:
                    opens[FaultKind.PARTITION] -= 1
            assert all(v == 0 for v in opens.values()), plan

    def test_straggler_wave_slows_a_fraction(self):
        cl = one_lane(10)
        scenario = StragglerWave(wave_every=5000.0, fraction=0.3,
                                 duration=300.0, factor=0.4)
        plan = scenario.generate(cl, HORIZON, np.random.default_rng(1))
        slowdowns = [ev for ev in plan if ev.kind is FaultKind.SLOWDOWN]
        assert slowdowns
        assert all(ev.factor == 0.4 for ev in slowdowns)
        by_time: dict[float, int] = {}
        for ev in slowdowns:
            by_time[ev.time] = by_time.get(ev.time, 0) + 1
        assert all(n == 3 for n in by_time.values())  # 30% of 10 nodes


class TestNormalize:
    def test_drops_illegal_transitions(self):
        cl = one_lane(2)
        events = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n0", FaultKind.FAILURE),   # double-failure
            FaultEvent(3.0, "n0", FaultKind.RECOVERY),
            FaultEvent(4.0, "n1", FaultKind.HEAL),      # heal w/o partition
            FaultEvent(5.0, "n1", FaultKind.RESTORE),   # restore w/o slowdown
        ]
        plan = normalize_plan(events, cl)
        assert validate_fault_plan(plan, cl) == []
        assert [ev.kind for ev in plan] == [FaultKind.FAILURE, FaultKind.RECOVERY]

    def test_keep_alive_preserves_last_node(self):
        cl = one_lane(2)
        events = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n1", FaultKind.PARTITION),  # would leave 0 nodes
            FaultEvent(10.0, "n1", FaultKind.HEAL),
            FaultEvent(20.0, "n0", FaultKind.RECOVERY),
        ]
        plan = normalize_plan(events, cl, keep_alive=True)
        assert validate_fault_plan(plan, cl) == []
        assert all(ev.kind not in (FaultKind.PARTITION, FaultKind.HEAL)
                   for ev in plan)

    def test_keep_alive_off_allows_dark_cluster(self):
        cl = one_lane(2)
        events = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n1", FaultKind.FAILURE),
            FaultEvent(10.0, "n0", FaultKind.RECOVERY),
            FaultEvent(11.0, "n1", FaultKind.RECOVERY),
        ]
        plan = normalize_plan(events, cl, keep_alive=False)
        assert len(plan) == 4


class TestCompile:
    def test_compile_merges_and_validates(self):
        cl = one_lane(4)
        plan = compile_plan(
            [CorrelatedFailureDomains(domains=2, mtbf=3000.0, mttr=200.0),
             StragglerWave(wave_every=2000.0, fraction=0.5, duration=300.0,
                           factor=0.5)],
            cl, HORIZON, rng=np.random.default_rng(5),
        )
        assert validate_fault_plan(plan, cl) == []
        kinds = {ev.kind for ev in plan}
        assert FaultKind.FAILURE in kinds and FaultKind.SLOWDOWN in kinds
        assert plan == sorted(plan, key=fault_sort_key)

    def test_default_config_yields_empty_plan(self):
        cl = one_lane(2)
        assert scenarios_from_config(ChaosConfig()) == []
        assert chaos_plan(cl, HORIZON, ChaosConfig(), rng=1) == []

    def test_chaos_plan_from_config(self):
        cl = one_lane(4)
        cfg = ChaosConfig(domains=2, domain_mtbf=3000.0, domain_mttr=200.0,
                          partition_mtbf=3000.0, partition_duration=150.0)
        plan = chaos_plan(cl, HORIZON, cfg, rng=9)
        assert validate_fault_plan(plan, cl) == []
        kinds = {ev.kind for ev in plan}
        assert FaultKind.PARTITION in kinds
        assert plan == chaos_plan(cl, HORIZON, cfg, rng=9)  # seeded


class TestJsonRoundTrip:
    def test_roundtrip_exact(self):
        cl = one_lane(4)
        cfg = ChaosConfig(domains=2, domain_mtbf=2500.0, domain_mttr=200.0,
                          wave_every=2000.0, storm_every=2500.0,
                          partition_mtbf=3000.0)
        plan = chaos_plan(cl, HORIZON, cfg, rng=13)
        assert plan
        assert plan_from_json(plan_to_json(plan)) == plan

    def test_bad_kind_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            plan_from_json([{"time": 1.0, "node_id": "n0", "kind": "meteor"}])
