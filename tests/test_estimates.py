"""Tests for the N^p preemption-count estimator (paper [29])."""

import pytest

from repro.core import estimate_preemptions
from repro.dag import Job, Task, chain_dag, tree_dag


def mk(tid: str, size=1000.0, parents=()) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size, parents=tuple(parents))


class TestEstimator:
    def test_nonnegative_and_complete(self):
        job = Job.from_tasks("J1", tree_dag("J1", depth=3, branching=2), deadline=1e4)
        est = estimate_preemptions([job], rate_mips=1000.0)
        assert set(est) == set(job.tasks)
        assert all(v >= 0 for v in est.values())

    def test_bigger_tasks_estimate_higher(self):
        small = mk("small", size=100.0)
        big = mk("big", size=10_000.0)
        job = Job.from_tasks("J", [small, big], deadline=1e5)
        est = estimate_preemptions([job], 1000.0)
        assert est["big"] > est["small"]

    def test_dependency_shield_lowers_estimate(self):
        # Same size: a task with many descendants is preempted less.
        job = Job.from_tasks("J1", tree_dag("J1", depth=3, branching=3), deadline=1e5)
        est = estimate_preemptions([job], 1000.0)
        root = "J1.T0000"
        leaf = sorted(est)[-1]
        assert est[root] < est[leaf]

    def test_tight_deadline_lowers_estimate(self):
        loose = Job.from_tasks("J", [mk("a")], deadline=1e6)
        t = Task(task_id="K.a", job_id="K", size_mi=1000.0)
        tight = Job(job_id="K", tasks={"K.a": t}, deadline=1.5)
        est = estimate_preemptions([loose, tight], 1000.0)
        assert est["K.a"] < est["a"]

    def test_clamped_at_max(self):
        huge = mk("huge", size=1e9)
        tiny = mk("tiny", size=1.0)
        job = Job.from_tasks("J", [huge, tiny], deadline=1e12)
        est = estimate_preemptions([job], 1000.0, max_preemptions=5.0)
        assert est["huge"] <= 5.0

    def test_empty(self):
        assert estimate_preemptions([], 1000.0) == {}

    def test_validation(self):
        job = Job.from_tasks("J", [mk("a")], deadline=1e4)
        with pytest.raises(ValueError):
            estimate_preemptions([job], 0.0)
        with pytest.raises(ValueError):
            estimate_preemptions([job], 1000.0, baseline=-1.0)

    def test_feeds_the_ilp(self):
        """The estimator's output plugs straight into ILPScheduler and
        inflates planned busy time."""
        from repro.cluster import uniform_cluster
        from repro.config import DSPConfig
        from repro.core import ILPScheduler

        cluster = uniform_cluster(1, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
        job = Job.from_tasks("J1", chain_dag("J1", 2, size_mi=1000.0), deadline=1e5)
        est = estimate_preemptions([job], 1000.0, baseline=4.0)
        cfg = DSPConfig(recovery_time=0.5, sigma=0.5)
        plain = ILPScheduler(cluster, cfg).solve([job])
        padded = ILPScheduler(cluster, cfg, preemption_estimates=est).solve([job])
        assert padded.makespan >= plain.makespan
