"""Unit tests for repro._util."""

import numpy as np
import pytest

from repro._util import (
    EPS,
    check_fraction,
    check_non_negative,
    check_positive,
    ensure_rng,
    isclose,
    pairwise_mean_gap,
    weighted_mean,
)


class TestEnsureRng:
    def test_from_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))


class TestChecks:
    def test_check_positive_accepts(self):
        assert check_positive(0.1, "x") == 0.1

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive(0.0, "x")

    def test_check_positive_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError, match="x must be >= 0"):
            check_non_negative(-0.001, "x")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.0001, "f")
        with pytest.raises(ValueError):
            check_fraction(-0.0001, "f")


class TestWeightedMean:
    def test_basic(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weights_apply(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([], [])

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [1.0, 2.0])

    def test_zero_weights_raise(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0, 2.0], [0.0, 0.0])


class TestPairwiseMeanGap:
    def test_uniform_gaps(self):
        assert pairwise_mean_gap([1.0, 2.0, 3.0]) == pytest.approx(1.0)

    def test_mixed_gaps(self):
        # gaps 1 and 3 -> mean 2
        assert pairwise_mean_gap([0.0, 1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value_is_zero(self):
        assert pairwise_mean_gap([5.0]) == 0.0

    def test_empty_is_zero(self):
        assert pairwise_mean_gap([]) == 0.0

    def test_identical_values_zero(self):
        assert pairwise_mean_gap([2.0, 2.0, 2.0]) == 0.0

    def test_descending_input_rejected(self):
        with pytest.raises(ValueError):
            pairwise_mean_gap([3.0, 1.0])


class TestIsclose:
    def test_within_eps(self):
        assert isclose(1.0, 1.0 + EPS / 2)

    def test_outside_eps(self):
        assert not isclose(1.0, 1.0 + 10 * EPS)
