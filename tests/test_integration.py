"""End-to-end integration tests: the paper's qualitative claims on small
workloads, cross-scheduler schedule validity, and full-pipeline runs."""

import pytest

from repro.cluster import palmetto_cluster
from repro.config import SimConfig
from repro.experiments import (
    build_workload_for_cluster,
    check_order,
    default_config,
    make_preemption_policies,
    make_schedulers,
    run_preemption,
    run_scheduling,
)

SIM = SimConfig(epoch=30.0, scheduling_period=300.0)


@pytest.fixture(scope="module")
def cluster():
    return palmetto_cluster(6)


@pytest.fixture(scope="module")
def workload(cluster):
    # Enough contention for the orderings to be visible, small enough to
    # run in seconds.
    return build_workload_for_cluster(
        12, cluster, scale=30.0, seed=11, demand_fraction=0.8
    )


@pytest.fixture(scope="module")
def scheduling_metrics(cluster, workload):
    cfg = default_config()
    out = {}
    for name, sched in make_schedulers(cluster, cfg).items():
        out[name] = run_scheduling(workload, cluster, sched, config=cfg, sim_config=SIM)
    return out


@pytest.fixture(scope="module")
def preemption_metrics(cluster, workload):
    cfg = default_config()
    out = {}
    for name, policy in make_preemption_policies(cfg).items():
        out[name] = run_preemption(workload, cluster, policy, config=cfg, sim_config=SIM)
    return out


class TestSchedulingClaims:
    def test_everything_completes(self, scheduling_metrics, workload):
        for name, m in scheduling_metrics.items():
            assert m.tasks_completed == workload.num_tasks, name
            assert m.jobs_completed == len(workload.jobs), name

    def test_dependency_aware_methods_have_zero_disorders(self, scheduling_metrics):
        for name in ("DSP", "Aalo", "TetrisW/SimDep"):
            assert scheduling_metrics[name].num_disorders == 0, name

    def test_blind_tetris_disorders(self, scheduling_metrics):
        assert scheduling_metrics["TetrisW/oDep"].num_disorders > 0

    def test_dsp_not_worst_makespan(self, scheduling_metrics):
        """Fig. 5's core claim at this scale: DSP beats the blind packer
        and is never the worst method."""
        values = {n: m.makespan for n, m in scheduling_metrics.items()}
        assert values["DSP"] < values["TetrisW/oDep"]
        assert values["DSP"] <= min(values.values()) * 1.15  # at or near best


class TestPreemptionClaims:
    def test_everything_completes(self, preemption_metrics, workload):
        for name, m in preemption_metrics.items():
            assert m.tasks_completed == workload.num_tasks, name

    def test_disorders_fig6a(self, preemption_metrics):
        values = {n: m.num_disorders for n, m in preemption_metrics.items()}
        assert values["DSP"] == 0
        assert values["DSPW/oPP"] == 0
        assert values["SRPT"] > max(values["Natjam"], values["Amoeba"]) * 0.99
        assert values["Natjam"] > 0 and values["Amoeba"] > 0

    def test_throughput_fig6b(self, preemption_metrics):
        values = {n: m.throughput_tasks_per_ms for n, m in preemption_metrics.items()}
        # SRPT worst; DSP variants best (paper order with ≈ tolerance).
        assert values["SRPT"] < min(values["Natjam"], values["Amoeba"])
        assert min(values["DSP"], values["DSPW/oPP"]) >= max(
            values["Natjam"], values["Amoeba"]
        ) * 0.98

    def test_waiting_fig6c(self, preemption_metrics):
        values = {n: m.avg_job_waiting for n, m in preemption_metrics.items()}
        # DSP variants wait least.
        assert max(values["DSP"], values["DSPW/oPP"]) <= min(
            values["Natjam"], values["Amoeba"], values["SRPT"]
        ) * 1.05

    def test_preemptions_fig6d(self, preemption_metrics):
        values = {n: m.num_preemptions for n, m in preemption_metrics.items()}
        # PP reduces DSP's preemptions; SRPT preempts the most.
        assert values["DSP"] <= values["DSPW/oPP"]
        assert values["SRPT"] == max(values.values())

    def test_pp_reduces_context_switch_overhead(self, preemption_metrics):
        assert (
            preemption_metrics["DSP"].total_context_switch_time
            <= preemption_metrics["DSPW/oPP"].total_context_switch_time + 1e-9
        )

    def test_checkpointless_srpt_slowest(self, preemption_metrics):
        assert preemption_metrics["SRPT"].makespan == max(
            m.makespan for m in preemption_metrics.values()
        )
