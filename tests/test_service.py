"""Tests for the scheduler-as-a-service layer (repro.service).

Covers, bottom-up: the wire protocol, the admission controller, the
streaming engine substrate, the deterministic service core (including
the kill-9 golden-compare recovery story), and the asyncio frontend over
both transports.
"""

import asyncio
import json

import pytest

from repro.cluster import Cluster, NodeSpec
from repro.config import ServiceConfig, TenantQuota
from repro.core import HeuristicScheduler
from repro.service import (
    AdmissionController,
    ServiceClient,
    ServiceCore,
    ServiceFrontend,
    TokenBucket,
    connect,
)
from repro.service.protocol import (
    ProtocolError,
    decode_frame,
    decode_job_spec,
    encode_frame,
    reply,
    split_frames,
)
from repro.sim import SimEngine, SimulationError


def make_cluster(n=4):
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=8.0, mem_size=8.0, mips_per_unit=100.0)
        for i in range(n)
    ])


def make_core(tmp_path=None, **cfg_kwargs):
    cfg_kwargs.setdefault("cycle_period", 0.5)
    cfg_kwargs.setdefault("pump_events", 32)
    cfg_kwargs.setdefault(
        "default_quota", TenantQuota(rate=100.0, burst=50, max_pending=128)
    )
    cfg = ServiceConfig(**cfg_kwargs)
    cluster = make_cluster()
    return ServiceCore(
        cluster, HeuristicScheduler(make_cluster()), cfg,
        data_dir=tmp_path,
    )


def job_spec(jid, ntasks=2, deadline=500.0):
    return {
        "job_id": jid,
        "deadline": deadline,
        "tasks": [
            {
                "task_id": f"t{t}",
                "size_mi": 50.0,
                "demand": {"cpu": 1.0, "mem": 1.0},
                "parents": [f"t{t-1}"] if t else [],
            }
            for t in range(ntasks)
        ],
    }


def submit_req(tenant, jid, **spec_kwargs):
    return {"op": "submit_job", "tenant": tenant, "job": job_spec(jid, **spec_kwargs)}


# --------------------------------------------------------------- protocol
class TestProtocol:
    def test_frame_roundtrip(self):
        msg = {"op": "status", "tenant": "a", "req": 7}
        assert decode_frame(encode_frame(msg)) == msg

    def test_split_frames_handles_partials(self):
        a = encode_frame({"x": 1})
        b = encode_frame({"y": 2})
        msgs, rest = split_frames(a + b[:3])
        assert msgs == [{"x": 1}] and rest == b[:3]
        msgs, rest = split_frames(rest + b[3:])
        assert msgs == [{"y": 2}] and rest == b""

    def test_oversize_frame_rejected(self):
        huge = (2**32 - 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError):
            split_frames(huge + b"x")

    def test_reply_echoes_req_id(self):
        assert reply({"req": 42}, "ok")["req"] == 42
        assert "req" not in reply({}, "ok")

    def test_decode_job_spec_namespaces(self):
        job, rel = decode_job_spec("acme", job_spec("j1"), arrival=3.0)
        assert job.job_id == "acme/j1"
        assert set(job.tasks) == {"acme/j1/t0", "acme/j1/t1"}
        assert job.arrival_time == 3.0
        assert job.deadline == 3.0 + rel

    @pytest.mark.parametrize("mutate", [
        lambda s: s.update(job_id="a/b"),
        lambda s: s.update(job_id=""),
        lambda s: s.update(tasks=[]),
        lambda s: s.update(deadline=-1.0),
        lambda s: s["tasks"][0].update(size_mi=0),
        lambda s: s["tasks"][0].update(demand={"cpu": -1}),
        lambda s: s["tasks"][1].update(parents=["nope"]),
        lambda s: s["tasks"][1].update(task_id="t0"),
    ])
    def test_decode_job_spec_rejects_bad_specs(self, mutate):
        spec = job_spec("j1")
        mutate(spec)
        with pytest.raises(ProtocolError):
            decode_job_spec("acme", spec, arrival=0.0)

    def test_decode_job_spec_rejects_cycles(self):
        spec = job_spec("j1")
        spec["tasks"][0]["parents"] = ["t1"]
        with pytest.raises(ProtocolError):
            decode_job_spec("acme", spec, arrival=0.0)


# -------------------------------------------------------------- admission
class TestTokenBucket:
    def test_burst_then_rate(self):
        b = TokenBucket(rate=2.0, burst=3, now=0.0)
        assert [b.take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = b.take(0.0)
        assert wait == pytest.approx(0.5)
        assert b.take(0.5) == 0.0  # one token accrued

    def test_refill_caps_at_burst(self):
        b = TokenBucket(rate=10.0, burst=2, now=0.0)
        b.take(0.0)
        assert b.peek(100.0)
        assert b.tokens == 2.0


class TestAdmissionController:
    def cfg(self, **kw):
        kw.setdefault("max_total_pending", 16)
        kw.setdefault("shed_threshold", 0.5)
        kw.setdefault(
            "default_quota", TenantQuota(rate=100.0, burst=50, max_pending=8)
        )
        return ServiceConfig(**kw)

    def test_queue_and_fair_drain(self):
        cfg = self.cfg(quotas=(
            ("big", TenantQuota(rate=100.0, burst=50, max_pending=8, share=2.0)),
        ))
        ac = AdmissionController(cfg)
        for i in range(4):
            assert ac.offer("big", f"big/j{i}", None, 0.0)[0] == "queued"
            assert ac.offer("small", f"small/j{i}", None, 0.0)[0] == "queued"
        batch = [e.job_id for _, e in ac.drain(6)]
        # share 2:1 → big admits two for every one of small's.
        assert batch.count("big/j0") + batch.count("big/j1") + batch.count(
            "big/j2"
        ) + batch.count("big/j3") == 4
        assert batch[:3].count("small/j0") == 1  # small is not starved
        assert ac.total_pending == 2

    def test_tenant_queue_backpressure(self):
        ac = AdmissionController(self.cfg())
        for i in range(8):
            assert ac.offer("t", f"t/j{i}", None, 0.0)[0] == "queued"
        verdict, retry_after = ac.offer("t", "t/j8", None, 0.0)
        assert verdict == "retry" and retry_after > 0

    def test_rate_limit_backpressure(self):
        cfg = self.cfg(default_quota=TenantQuota(rate=1.0, burst=1, max_pending=8))
        ac = AdmissionController(cfg)
        assert ac.offer("t", "t/j0", None, 0.0)[0] == "queued"
        verdict, retry_after = ac.offer("t", "t/j1", None, 0.0)
        assert verdict == "retry"
        assert retry_after == pytest.approx(1.0)

    def test_global_cap_sheds(self):
        cfg = self.cfg(max_total_pending=4, shed_threshold=0.99)
        ac = AdmissionController(cfg)
        for i in range(4):
            ac.offer("t", f"t/j{i}", None, 0.0)
        assert ac.offer("t", "t/j4", None, 0.0)[0] == "shed"
        assert ac.offer("other", "other/j0", None, 0.0)[0] == "shed"

    def test_saturation_sheds_only_over_fair_slice(self):
        # Cap 16, threshold 0.5 → saturated at 8 pending.  Two equal-share
        # tenants → fair slice 8 each: the hog over its slice is shed, the
        # tenant within its slice still queues.
        cfg = self.cfg(quotas=(
            ("hog", TenantQuota(rate=1000.0, burst=1000, max_pending=100)),
        ))
        ac = AdmissionController(cfg)
        assert ac.offer("tiny", "tiny/j0", None, 0.0)[0] == "queued"
        verdicts = [ac.offer("hog", f"hog/j{i}", None, 0.0)[0] for i in range(10)]
        assert verdicts[:9] == ["queued"] * 9
        assert verdicts[9] == "shed"  # 9 pending > fair slice of 8
        assert ac.offer("tiny", "tiny/j1", None, 0.0)[0] == "queued"

    def test_expire_answers_timeout(self):
        cfg = self.cfg(request_deadline=2.0)
        ac = AdmissionController(cfg)
        ac.offer("t", "t/j0", "payload0", 0.0)
        ac.offer("t", "t/j1", "payload1", 1.5)
        expired = ac.expire(2.0)
        assert [e.job_id for _, e in expired] == ["t/j0"]
        assert ac.total_pending == 1
        assert ac.tenant("t").timeouts == 1

    def test_cancel_removes_pending(self):
        ac = AdmissionController(self.cfg())
        ac.offer("t", "t/j0", None, 0.0)
        assert ac.cancel("t", "t/j0") is not None
        assert ac.cancel("t", "t/j0") is None
        assert ac.total_pending == 0

    def test_stats_counters(self):
        ac = AdmissionController(self.cfg())
        ac.offer("t", "t/j0", None, 0.0)
        ac.drain(1)
        stats = ac.stats()
        assert stats["tenants"]["t"]["submitted"] == 1
        assert stats["tenants"]["t"]["admitted"] == 1
        assert stats["total_pending"] == 0


# ------------------------------------------------------- streaming engine
class TestStreamingEngine:
    def engine(self):
        cluster = make_cluster()
        return SimEngine(
            cluster, [], HeuristicScheduler(make_cluster()), streaming=True
        )

    def test_submit_pump_finalize(self):
        eng = self.engine()
        job, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        eng.submit_job(job)
        while not eng.runtime.state.all_done():
            assert eng.pump(16) > 0
        metrics = eng.finalize()
        assert metrics.tasks_completed == 2

    def test_submission_after_progress(self):
        eng = self.engine()
        j1, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        eng.submit_job(j1)
        while not eng.runtime.state.all_done():
            eng.pump(16)
        # The heap is drained; a late submission must re-arm scheduling.
        j2, _ = decode_job_spec("a", job_spec("j2"), arrival=eng.now + 1.0)
        eng.submit_job(j2)
        while not eng.runtime.state.all_done():
            assert eng.pump(16) > 0
        assert eng.runtime.state.completed_tasks == 4

    def test_duplicate_job_rejected_state_unchanged(self):
        eng = self.engine()
        job, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        eng.submit_job(job)
        before = len(eng.runtime.state.tasks)
        dup, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        with pytest.raises(ValueError):
            eng.submit_job(dup)
        assert len(eng.runtime.state.tasks) == before

    def test_past_arrival_rejected(self):
        eng = self.engine()
        j1, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        eng.submit_job(j1)
        eng.pump(8)
        assert eng.now > 0
        late, _ = decode_job_spec("a", job_spec("j2"), arrival=0.0)
        with pytest.raises(ValueError):
            eng.submit_job(late)

    def test_run_forbidden_in_streaming_mode(self):
        with pytest.raises(SimulationError):
            self.engine().run()

    def test_batch_engine_rejects_submit(self):
        cluster = make_cluster()
        job, _ = decode_job_spec("a", job_spec("j1"), arrival=0.0)
        eng = SimEngine(cluster, [job], HeuristicScheduler(make_cluster()))
        with pytest.raises(SimulationError):
            eng.submit_job(job)


# ------------------------------------------------------------ service core
class TestServiceCore:
    def test_submit_ack_after_cycle(self):
        core = make_core()
        ticket = core.submit(submit_req("a", "j1"))
        assert not isinstance(ticket, dict)
        resolved = core.run_cycle()
        assert ticket in resolved
        assert ticket.reply["status"] == "ok"
        core.close()

    def test_virtual_clock(self):
        core = make_core()
        assert core.now == 0.0
        core.run_cycle()
        core.run_cycle()
        assert core.now == pytest.approx(1.0)  # 2 × cycle_period 0.5
        core.close()

    def test_duplicate_and_invalid_rejected_immediately(self):
        core = make_core()
        core.submit(submit_req("a", "j1"))
        core.run_cycle()
        dup = core.submit(submit_req("a", "j1"))
        assert dup["status"] == "rejected" and "duplicate" in dup["error"]
        bad = core.submit({"op": "submit_job", "tenant": "x/y", "job": job_spec("j")})
        assert bad["status"] == "rejected"
        core.close()

    def test_cancel_pending_only(self):
        core = make_core(admission_per_cycle=1)
        t1 = core.submit(submit_req("a", "j1"))
        t2 = core.submit(submit_req("a", "j2"))
        core.run_cycle()  # admits j1 only
        assert t1.reply["status"] == "ok"
        r = core.cancel({"op": "cancel", "tenant": "a", "job_id": "j2"})
        assert r["status"] == "ok" and r["state"] == "cancelled"
        assert t2.reply["status"] == "rejected"
        r = core.cancel({"op": "cancel", "tenant": "a", "job_id": "j1"})
        assert r["status"] == "rejected" and "admitted" in r["error"]
        core.close()

    def test_status_lifecycle(self):
        core = make_core(admission_per_cycle=1)
        core.submit(submit_req("a", "j1"))
        core.submit(submit_req("a", "j2"))
        sreq = {"op": "status", "tenant": "a", "job_id": "j2"}
        assert core.status(sreq)["state"] == "pending"
        core.run_cycle()
        assert core.status({"op": "status", "tenant": "a", "job_id": "j1"})[
            "state"
        ] in ("running", "completed")
        for _ in range(40):
            core.run_cycle()
        assert core.status({"op": "status", "tenant": "a", "job_id": "j1"})[
            "state"
        ] == "completed"
        assert core.status({"op": "status", "tenant": "a", "job_id": "zz"})[
            "state"
        ] == "unknown"
        server = core.status({"op": "status", "tenant": "a"})
        assert server["jobs"] == 2 and server["draining"] is False
        core.close()

    def test_request_deadline_times_out(self):
        core = make_core(admission_per_cycle=1, request_deadline=1.0)
        tickets = [core.submit(submit_req("a", f"j{i}")) for i in range(5)]
        for _ in range(4):
            core.run_cycle()
        statuses = [t.reply["status"] for t in tickets if t.reply]
        assert "timeout" in statuses  # the backlog tail expired at t>=1.0
        core.close()

    def test_drain_rejects_pending_finishes_admitted(self):
        core = make_core(admission_per_cycle=1)
        t1 = core.submit(submit_req("a", "j1"))
        t2 = core.submit(submit_req("a", "j2"))
        core.run_cycle()
        stats = core.drain()
        assert t1.reply["status"] == "ok"
        assert t2.reply["status"] == "rejected"
        assert stats["engine"]["tasks_done"] == 2  # only j1's tasks ran
        assert core.closed
        post = core.submit(submit_req("a", "j3"))
        assert post["status"] == "rejected"

    def test_shed_under_overload(self):
        core = make_core(
            max_total_pending=4, shed_threshold=0.99,
            default_quota=TenantQuota(rate=1000.0, burst=1000, max_pending=1000),
        )
        replies = [core.submit(submit_req("a", f"j{i}")) for i in range(8)]
        immediate = [r for r in replies if isinstance(r, dict)]
        assert len(immediate) == 4
        assert all(r["status"] == "shed" for r in immediate)
        # Reads still answer while shedding.
        assert core.status({"op": "status", "tenant": "a"})["status"] == "ok"
        assert core.stats()["status"] == "ok"
        core.close()

    def test_snapshot_rotation(self, tmp_path):
        core = make_core(tmp_path / "svc", snapshot_every_cycles=1)
        core.submit(submit_req("a", "j1"))
        for _ in range(6):
            core.run_cycle()
        snaps = sorted((tmp_path / "svc" / "snapshots").glob("service-*.json"))
        assert len(snaps) == 3  # rotated, newest kept
        core.close()


# ---------------------------------------------------------- kill-9 recovery
SCRIPT = {
    1: [("a", "j1"), ("b", "j2")],
    3: [("a", "j3")],
    6: [("c", "j4"), ("a", "j5")],
    9: [("b", "j6")],
}
TOTAL_CYCLES = 14


def recovery_cfg():
    return ServiceConfig(
        cycle_period=0.5, pump_events=32, snapshot_every_cycles=4,
        default_quota=TenantQuota(rate=100.0, burst=50, max_pending=128),
    )


def drive(core, start_cycle, end_cycle):
    acked = []
    for k in range(start_cycle + 1, end_cycle + 1):
        for tenant, jid in SCRIPT.get(k, ()):
            t = core.submit(submit_req(tenant, jid, ntasks=3))
            assert not isinstance(t, dict), t
        for t in core.run_cycle():
            assert t.reply["status"] == "ok"
            acked.append(t.job_id)
    return acked


class TestKill9Recovery:
    def golden(self, tmp_path):
        gold = ServiceCore(
            make_cluster(), HeuristicScheduler(make_cluster()), recovery_cfg(),
            data_dir=tmp_path / "gold",
        )
        acked = drive(gold, 0, TOTAL_CYCLES)
        stats = gold.stats()
        gold.close()
        journal = (tmp_path / "gold" / "engine.jsonl").read_bytes()
        return acked, stats, journal

    def crash_at(self, tmp_path, crash_cycle):
        core = ServiceCore(
            make_cluster(), HeuristicScheduler(make_cluster()), recovery_cfg(),
            data_dir=tmp_path / "crash",
        )
        acked = drive(core, 0, crash_cycle)
        # kill -9: abandon without close/flush beyond what run_cycle did.
        if core.engine.journal is not None:
            core.engine.journal.flush()
        return acked

    def recover_and_finish(self, tmp_path):
        rec = ServiceCore.recover(
            make_cluster(), HeuristicScheduler(make_cluster()), recovery_cfg(),
            data_dir=tmp_path / "crash",
        )
        acked = drive(rec, rec.cycle, TOTAL_CYCLES)
        stats = rec.stats()
        rec.close()
        return acked, stats, (tmp_path / "crash" / "engine.jsonl").read_bytes()

    @pytest.mark.parametrize("crash_cycle", [2, 5, 10])
    def test_no_acknowledged_job_lost_and_bit_identical(self, tmp_path, crash_cycle):
        g_acked, g_stats, g_journal = self.golden(tmp_path)
        c_acked = self.crash_at(tmp_path, crash_cycle)
        r_acked, r_stats, r_journal = self.recover_and_finish(tmp_path)
        assert set(g_acked) == set(c_acked) | set(r_acked)
        assert g_stats["engine"] == r_stats["engine"]
        assert g_journal == r_journal  # byte-identical continuation

    def test_recovery_without_snapshot_replays_journal(self, tmp_path):
        cfg = recovery_cfg().replace(snapshot_every_cycles=0)
        core = ServiceCore(
            make_cluster(), HeuristicScheduler(make_cluster()), cfg,
            data_dir=tmp_path / "crash",
        )
        acked = []
        for k in range(1, 5):
            for tenant, jid in SCRIPT.get(k, ()):
                core.submit(submit_req(tenant, jid, ntasks=3))
            acked += [t.job_id for t in core.run_cycle()]
        del core  # kill -9
        rec = ServiceCore.recover(
            make_cluster(), HeuristicScheduler(make_cluster()), cfg,
            data_dir=tmp_path / "crash",
        )
        state = rec.engine.runtime.state
        assert set(acked) <= set(state.jobs)
        drive(rec, rec.cycle, TOTAL_CYCLES)
        assert state.all_done()
        rec.close()

    def test_torn_admission_tail_loses_only_unacked(self, tmp_path):
        core = ServiceCore(
            make_cluster(), HeuristicScheduler(make_cluster()), recovery_cfg(),
            data_dir=tmp_path / "crash",
        )
        acked = drive(core, 0, 6)
        # Simulate a crash mid-append: chop bytes off the admission journal.
        adm = tmp_path / "crash" / "admissions.jsonl"
        core.engine.journal.flush()
        data = adm.read_bytes()
        adm.write_bytes(data[:-9])
        rec = ServiceCore.recover(
            make_cluster(), HeuristicScheduler(make_cluster()), recovery_cfg(),
            data_dir=tmp_path / "crash",
        )
        jobs = set(rec.engine.runtime.state.jobs)
        # The torn record was the LAST admission (cycle 6); every earlier
        # acknowledged admission survives.
        acked_before_tail = [j for j in acked if j != acked[-1]]
        assert set(acked_before_tail) <= jobs
        rec.close()


# ----------------------------------------------------------- frontend/comm
def run_async(coro):
    return asyncio.run(coro)


async def start_frontend(core, address):
    fe = ServiceFrontend(core)
    bound = await fe.start(address)
    return fe, bound


class TestFrontendInproc:
    def test_concurrent_clients_all_acked(self):
        async def main():
            core = make_core()
            fe, addr = await start_frontend(core, "inproc://t-concurrent")

            async def one(i):
                async with await ServiceClient.connect(addr) as c:
                    return await c.submit_job(f"team{i % 4}", job_spec(f"j{i}"))

            replies = await asyncio.gather(*[one(i) for i in range(40)])
            assert all(r["status"] == "ok" for r in replies)
            stats = await fe.drain_and_stop()
            assert stats["engine"]["jobs"] == 40
            assert stats["engine"]["tasks_done"] == 80

        run_async(main())

    def test_status_answers_during_backlog(self):
        async def main():
            core = make_core(admission_per_cycle=1, pump_events=4)
            fe, addr = await start_frontend(core, "inproc://t-status")
            submitters = []
            for i in range(10):
                c = await ServiceClient.connect(addr)
                submitters.append(
                    asyncio.ensure_future(c.submit_job("a", job_spec(f"j{i}")))
                )
            await asyncio.sleep(0)
            async with await ServiceClient.connect(addr) as probe:
                st = await asyncio.wait_for(probe.status(), timeout=5)
                assert st["status"] == "ok"
            await asyncio.gather(*submitters)
            await fe.drain_and_stop()

        run_async(main())

    def test_overload_sheds_but_never_drops_silently(self):
        async def main():
            core = make_core(
                max_total_pending=8, shed_threshold=0.5, admission_per_cycle=2,
                pump_events=8,
                default_quota=TenantQuota(rate=1000.0, burst=1000, max_pending=1000),
            )
            fe, addr = await start_frontend(core, "inproc://t-overload")

            async def one(i):
                async with await ServiceClient.connect(addr) as c:
                    return await c.submit_job("hog", job_spec(f"j{i}"))

            replies = await asyncio.gather(*[one(i) for i in range(60)])
            statuses = {r["status"] for r in replies}
            assert len(replies) == 60  # every request answered
            assert "shed" in statuses  # overload visible, not silent
            acked = [r for r in replies if r["status"] == "ok"]
            stats = await fe.drain_and_stop()
            # Zero acknowledged-job loss even under shedding.
            assert stats["engine"]["jobs"] == len(acked)

        run_async(main())

    def test_cancel_and_error_paths(self):
        async def main():
            core = make_core(admission_per_cycle=1)
            fe, addr = await start_frontend(core, "inproc://t-cancel")
            async with await ServiceClient.connect(addr) as c:
                bad = await c.request({"op": "bogus"})
                assert bad["status"] == "error"
                malformed = await c.submit_job("a", {"job_id": "x"})
                assert malformed["status"] == "rejected"
            await fe.drain_and_stop()

        run_async(main())

    def test_drain_op_over_the_wire(self):
        async def main():
            core = make_core()
            fe, addr = await start_frontend(core, "inproc://t-drain")
            async with await ServiceClient.connect(addr) as c:
                r = await c.submit_job("a", job_spec("j1"))
                assert r["status"] == "ok"
                final = await c.drain()
                assert final["status"] == "ok" and final["draining"]
            assert core.closed

        run_async(main())

    def test_connect_refused_without_listener(self):
        async def main():
            with pytest.raises(ConnectionRefusedError):
                await connect("inproc://nobody-home")

        run_async(main())


class TestFrontendTCP:
    def test_tcp_end_to_end(self):
        async def main():
            core = make_core()
            fe, addr = await start_frontend(core, "tcp://127.0.0.1:0")
            assert not addr.endswith(":0")  # ephemeral port resolved
            async with await ServiceClient.connect(addr) as c:
                r = await c.submit_job("acme", job_spec("j1"))
                assert r["status"] == "ok"
                st = await c.status("acme", "j1")
                assert st["state"] in ("running", "completed")
                s = await c.stats()
                assert s["engine"]["jobs"] == 1
            await fe.drain_and_stop()

        run_async(main())
