"""Tests for DSPConfig/SimConfig — including the Table II defaults (E14)."""

import pytest

from repro.config import DSPConfig, SimConfig


class TestTableIIDefaults:
    """The paper's Table II parameter settings are the library defaults."""

    def test_theta_weights(self):
        cfg = DSPConfig()
        assert cfg.theta_cpu == 0.5
        assert cfg.theta_mem == 0.5

    def test_gamma(self):
        assert DSPConfig().gamma == 0.5

    def test_omega_weights(self):
        cfg = DSPConfig()
        assert cfg.omega_remaining == 0.5
        assert cfg.omega_waiting == 0.3
        assert cfg.omega_allowable == 0.2

    def test_delta(self):
        assert DSPConfig().delta == 0.35

    def test_srpt_weights(self):
        cfg = DSPConfig()
        assert cfg.srpt_alpha == 0.5
        assert cfg.srpt_beta == 1.0

    def test_sigma_is_paper_value(self):
        assert DSPConfig().sigma == 0.05

    def test_pp_enabled_by_default(self):
        assert DSPConfig().use_pp is True

    def test_tau_documented_deviation(self):
        # Table II says 0.05 s; the library deliberately defaults higher
        # (see DESIGN.md §2) but must accept the paper's value.
        assert DSPConfig().tau == 30.0
        assert DSPConfig(tau=0.05).tau == 0.05


class TestDSPConfigValidation:
    def test_omegas_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            DSPConfig(omega_remaining=0.5, omega_waiting=0.5, omega_allowable=0.5)

    @pytest.mark.parametrize("gamma", [0.0, 1.0, -0.1, 1.5])
    def test_gamma_open_interval(self, gamma):
        with pytest.raises(ValueError, match="gamma"):
            DSPConfig(gamma=gamma)

    @pytest.mark.parametrize("rho", [1.0, 0.5, 0.0])
    def test_rho_must_exceed_one(self, rho):
        with pytest.raises(ValueError, match="rho"):
            DSPConfig(rho=rho)

    def test_delta_is_fraction(self):
        with pytest.raises(ValueError):
            DSPConfig(delta=1.2)

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            DSPConfig(tau=-1.0)

    def test_negative_recovery_rejected(self):
        with pytest.raises(ValueError):
            DSPConfig(recovery_time=-0.1)

    def test_both_thetas_zero_rejected(self):
        with pytest.raises(ValueError):
            DSPConfig(theta_cpu=0.0, theta_mem=0.0)

    def test_one_theta_zero_allowed(self):
        assert DSPConfig(theta_cpu=0.0, theta_mem=1.0).theta_mem == 1.0


class TestDSPConfigHelpers:
    def test_without_pp(self):
        cfg = DSPConfig().without_pp()
        assert cfg.use_pp is False
        # Everything else preserved.
        assert cfg.gamma == DSPConfig().gamma

    def test_without_pp_does_not_mutate(self):
        base = DSPConfig()
        base.without_pp()
        assert base.use_pp is True

    def test_replace(self):
        cfg = DSPConfig().replace(rho=2.5)
        assert cfg.rho == 2.5
        assert cfg.delta == 0.35

    def test_frozen(self):
        with pytest.raises(Exception):
            DSPConfig().rho = 3.0  # type: ignore[misc]


class TestSimConfig:
    def test_defaults(self):
        sc = SimConfig()
        assert sc.epoch == 5.0
        assert sc.scheduling_period == 300.0  # the paper's 5 minutes

    def test_epoch_must_fit_period(self):
        with pytest.raises(ValueError, match="epoch"):
            SimConfig(epoch=100.0, scheduling_period=50.0)

    @pytest.mark.parametrize("field", ["epoch", "scheduling_period", "horizon"])
    def test_positive_fields(self, field):
        with pytest.raises(ValueError):
            SimConfig(**{field: 0.0})

    def test_replace(self):
        assert SimConfig().replace(epoch=2.0).epoch == 2.0
