"""Tests for Schedule / TaskAssignment / verify_schedule."""

import pytest

from repro.cluster import uniform_cluster
from repro.core import Schedule, TaskAssignment, verify_schedule
from repro.dag import Job, Task


def mk(tid: str, parents=(), size=1000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size, parents=tuple(parents))


def asg(tid: str, node: str, start: float, finish: float) -> TaskAssignment:
    return TaskAssignment(task_id=tid, node_id=node, start=start, finish=finish)


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


@pytest.fixture
def chain_job() -> Job:
    return Job.from_tasks("J", [mk("a"), mk("b", ["a"])], deadline=100.0)


class TestTaskAssignment:
    def test_duration(self):
        assert asg("a", "n", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_finish_before_start_rejected(self):
        with pytest.raises(ValueError):
            asg("a", "n", 5.0, 4.0)


class TestSchedule:
    def test_makespan_spans_first_start_to_last_finish(self):
        s = Schedule({
            "a": asg("a", "n", 2.0, 5.0),
            "b": asg("b", "n", 5.0, 9.0),
        })
        assert s.makespan == pytest.approx(7.0)

    def test_empty_makespan_zero(self):
        assert Schedule({}).makespan == 0.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Schedule({"x": asg("a", "n", 0.0, 1.0)})

    def test_lookups(self):
        s = Schedule({"a": asg("a", "n1", 0.0, 1.0)})
        assert s.node_of("a") == "n1"
        assert s.start_of("a") == 0.0
        assert "a" in s and "b" not in s
        assert len(s) == 1

    def test_tasks_on_sorted_by_start(self):
        s = Schedule({
            "a": asg("a", "n", 5.0, 6.0),
            "b": asg("b", "n", 1.0, 2.0),
            "c": asg("c", "m", 0.0, 1.0),
        })
        assert [a.task_id for a in s.tasks_on("n")] == ["b", "a"]


class TestVerifySchedule:
    def test_feasible_schedule_passes(self, cluster, chain_job):
        s = Schedule({
            "a": asg("a", "node-00", 0.0, 1.0),
            "b": asg("b", "node-00", 1.0, 2.0),
        })
        assert verify_schedule(s, [chain_job], cluster) == []

    def test_unassigned_task_flagged(self, cluster, chain_job):
        s = Schedule({"a": asg("a", "node-00", 0.0, 1.0)})
        violations = verify_schedule(s, [chain_job], cluster)
        assert any("unassigned" in v for v in violations)

    def test_unknown_node_flagged(self, cluster, chain_job):
        s = Schedule({
            "a": asg("a", "ghost", 0.0, 1.0),
            "b": asg("b", "node-00", 1.0, 2.0),
        })
        assert any("unknown node" in v for v in verify_schedule(s, [chain_job], cluster))

    def test_precedence_violation_flagged(self, cluster, chain_job):
        s = Schedule({
            "a": asg("a", "node-00", 0.0, 2.0),
            "b": asg("b", "node-01", 1.0, 3.0),  # starts before a finishes
        })
        assert any("precedence" in v for v in verify_schedule(s, [chain_job], cluster))

    def test_overlap_violation_flagged(self, cluster):
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=100.0)
        s = Schedule({
            "a": asg("a", "node-00", 0.0, 2.0),
            "b": asg("b", "node-00", 1.0, 3.0),  # overlaps on same node
        })
        assert any("concurrent" in v for v in verify_schedule(s, [job], cluster))

    def test_overlap_ok_with_lanes(self, cluster):
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=100.0)
        s = Schedule({
            "a": asg("a", "node-00", 0.0, 2.0),
            "b": asg("b", "node-00", 1.0, 3.0),
        })
        v = verify_schedule(
            s, [job], cluster, unit_capacity=False, node_lanes={"node-00": 2, "node-01": 2}
        )
        assert v == []

    def test_deadline_violation_flagged(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1.0)
        s = Schedule({"a": asg("a", "node-00", 0.0, 5.0)})
        assert any("deadline" in v for v in verify_schedule(s, [job], cluster))

    def test_deadline_check_optional(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1.0)
        s = Schedule({"a": asg("a", "node-00", 0.0, 5.0)})
        assert verify_schedule(s, [job], cluster, check_deadlines=False) == []

    def test_start_before_arrival_flagged(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=200.0, arrival_time=100.0)
        s = Schedule({"a": asg("a", "node-00", 50.0, 51.0)})
        assert any("arrives" in v for v in verify_schedule(s, [job], cluster))

    def test_unknown_assignment_flagged(self, cluster, chain_job):
        s = Schedule({
            "a": asg("a", "node-00", 0.0, 1.0),
            "b": asg("b", "node-00", 1.0, 2.0),
            "zz": asg("zz", "node-00", 2.0, 3.0),
        })
        assert any("unknown task" in v for v in verify_schedule(s, [chain_job], cluster))
