"""Tests for TaskRuntime progress math and NodeRuntime bookkeeping."""

import pytest

from repro.cluster import NodeSpec, ResourceVector
from repro.dag import Task, TaskState
from repro.sim import NodeRuntime, TaskRuntime


def runtime(size=1000.0, deadline=100.0, parents=0) -> TaskRuntime:
    task = Task(task_id="t", job_id="j", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=1.0))
    return TaskRuntime(task=task, deadline=deadline, unfinished_parents=parents)


class TestProgressAccounting:
    def test_no_progress_when_not_running(self):
        rt = runtime()
        assert rt.progress_seconds(10.0) == 0.0

    def test_progress_while_running(self):
        rt = runtime()
        rt.state = TaskState.RUNNING
        rt.run_start = 5.0
        assert rt.progress_seconds(8.0) == pytest.approx(3.0)

    def test_recovery_delays_progress(self):
        rt = runtime()
        rt.state = TaskState.RUNNING
        rt.run_start = 0.0
        rt.current_recovery = 2.0
        assert rt.progress_seconds(1.0) == 0.0        # still recovering
        assert rt.progress_seconds(3.0) == pytest.approx(1.0)

    def test_work_done_caps_at_size(self):
        rt = runtime(size=100.0)
        rt.state = TaskState.RUNNING
        rt.run_start = 0.0
        assert rt.work_done_at(1000.0, rate=1000.0) == 100.0

    def test_remaining_time_running(self):
        rt = runtime(size=1000.0)
        rt.state = TaskState.RUNNING
        rt.run_start = 0.0
        # After 0.4 s at 1000 MIPS: 600 MI left -> 0.6 s.
        assert rt.remaining_time_at(0.4, 1000.0) == pytest.approx(0.6)

    def test_remaining_time_queued_includes_recovery(self):
        rt = runtime(size=1000.0)
        rt.recovery_due = 0.5
        assert rt.remaining_time_at(0.0, 1000.0) == pytest.approx(1.5)

    def test_remaining_time_running_unpaid_recovery(self):
        rt = runtime(size=1000.0)
        rt.state = TaskState.RUNNING
        rt.run_start = 0.0
        rt.current_recovery = 1.0
        # At t=0.25: 0.75 s recovery left + full 1 s work.
        assert rt.remaining_time_at(0.25, 1000.0) == pytest.approx(1.75)


class TestWaiting:
    def test_stint_and_total(self):
        rt = runtime()
        rt.queued_since = 10.0
        rt.total_wait = 4.0
        assert rt.stint_waiting_at(15.0) == pytest.approx(5.0)
        assert rt.waiting_time_at(15.0) == pytest.approx(9.0)

    def test_not_queued_is_zero(self):
        rt = runtime()
        rt.total_wait = 4.0
        assert rt.stint_waiting_at(15.0) == 0.0
        assert rt.waiting_time_at(15.0) == pytest.approx(4.0)

    def test_overdue_waits_for_planned_start(self):
        rt = runtime()
        rt.queued_since = 0.0
        rt.planned_start = 50.0
        assert rt.overdue_waiting_at(30.0) == 0.0          # not yet due
        assert rt.overdue_waiting_at(70.0) == pytest.approx(20.0)

    def test_overdue_after_requeue(self):
        rt = runtime()
        rt.planned_start = 0.0
        rt.queued_since = 100.0  # re-entered the queue at t=100
        assert rt.overdue_waiting_at(130.0) == pytest.approx(30.0)


class TestRunnableFlags:
    def test_runnable_when_no_parents(self):
        assert runtime(parents=0).is_runnable
        assert not runtime(parents=2).is_runnable

    def test_occupies_resources(self):
        rt = runtime()
        assert not rt.occupies_resources
        rt.state = TaskState.RUNNING
        assert rt.occupies_resources
        rt.state = TaskState.STALLED
        assert rt.occupies_resources
        rt.state = TaskState.QUEUED
        assert not rt.occupies_resources


class TestNodeRuntime:
    @pytest.fixture
    def node(self) -> NodeRuntime:
        spec = NodeSpec(node_id="n", cpu_size=4.0, mem_size=8.0)
        return NodeRuntime(spec, rate=1000.0)

    def test_queue_ordered_by_planned_start(self, node):
        node.enqueue("late", 10.0)
        node.enqueue("early", 1.0)
        node.enqueue("mid", 5.0)
        assert node.queued_ids() == ["early", "mid", "late"]

    def test_dequeue_specific(self, node):
        node.enqueue("a", 1.0)
        node.enqueue("b", 2.0)
        node.dequeue("a", 1.0)
        assert node.queued_ids() == ["b"]

    def test_dequeue_missing_raises(self, node):
        with pytest.raises(ValueError):
            node.dequeue("ghost", 1.0)

    def test_allocate_and_release(self, node):
        demand = ResourceVector(cpu=2.0, mem=4.0)
        node.allocate(demand)
        assert node.free.cpu == pytest.approx(2.0)
        node.release(demand)
        assert node.free.cpu == pytest.approx(4.0)

    def test_allocate_over_capacity_raises(self, node):
        with pytest.raises(RuntimeError):
            node.allocate(ResourceVector(cpu=100.0))

    def test_release_clamped_to_spec(self, node):
        node.release(ResourceVector(cpu=100.0))
        assert node.free.cpu == 4.0  # never exceeds capacity

    def test_fits(self, node):
        assert node.fits(ResourceVector(cpu=4.0, mem=8.0))
        assert not node.fits(ResourceVector(cpu=4.1))
