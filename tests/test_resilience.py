"""Tests for the resilience layer: config, retries/backoff, speculation,
quarantine, and the end-to-end acceptance sweep (resilience-on beats
resilience-off on lost work under the seed-fixed mtbf=3000 fault plan)."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import ResilienceConfig, SimConfig
from repro.core import DSPSystem, HeuristicScheduler
from repro.dag import Job, Task
from repro.experiments import (
    build_workload_for_cluster,
    cluster_profile,
    default_config,
)
from repro.sim import (
    AttemptBudgetExhausted,
    FaultEvent,
    FaultKind,
    SimEngine,
    TaskStalled,
    TaskStarted,
    random_fault_plan,
)


def mk(tid: str, size=5000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5))


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def run(cluster, jobs, faults, resilience=None, engine_cls=SimEngine, **kw):
    eng = engine_cls(
        cluster, jobs, HeuristicScheduler(cluster),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        faults=faults, resilience=resilience, **kw,
    )
    return eng, eng.run()


class RecordingEngine(SimEngine):
    """SimEngine that logs every (time, task, node) dispatch by
    subscribing to the event bus (no engine internals involved)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.starts: list[tuple[float, str, str]] = []
        self.runtime.bus.subscribe(
            (TaskStarted, TaskStalled),
            lambda ev: self.starts.append((ev.time, ev.task_id, ev.node_id)),
        )


class TestResilienceConfig:
    def test_defaults_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize("kw", [
        {"max_attempts": 0},
        {"backoff_base": -1.0},
        {"backoff_base": 10.0, "backoff_cap": 5.0},
        {"timeout_factor": 0.5},
        {"timeout_factor": -1.0},
        {"speculation_threshold": 1.5},
        {"health_alpha": 0.0},
        {"health_alpha": 1.5},
        {"quarantine_threshold": 0.0},
        {"quarantine_duration": -1.0},
    ])
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            ResilienceConfig(**kw)

    def test_timeouts_and_speculation_can_be_disabled(self):
        cfg = ResilienceConfig(timeout_factor=0.0, speculation_threshold=0.0)
        assert cfg.timeout_factor == 0.0
        assert cfg.speculation_threshold == 0.0

    def test_replace(self):
        cfg = ResilienceConfig().replace(max_attempts=9)
        assert cfg.max_attempts == 9


class TestRetryBackoff:
    def test_task_fail_retries_and_completes(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=2000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL)]
        _, m = run(cl, [job], faults, resilience=ResilienceConfig())
        assert m.tasks_completed == 1
        assert m.num_task_failures == 1
        assert m.num_retries == 1
        assert m.lost_work_mi > 0.0  # the killed stint's progress

    def test_backoff_delays_the_retry(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=2000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL)]
        _, eager = run(cl, [job], faults, resilience=None)
        _, gated = run(cl, [job], faults,
                       resilience=ResilienceConfig(backoff_base=8.0))
        assert eager.num_retries == 1  # non-resilient retry is immediate
        # First-attempt backoff is base * 2**0 = 8 s; the gated run cannot
        # re-dispatch before t=10 while the eager one restarts by t=3.
        assert gated.makespan >= eager.makespan + 5.0

    def test_attempt_budget_exhaustion_aborts(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL)]
        with pytest.raises(AttemptBudgetExhausted):
            run(cl, [job], faults, resilience=ResilienceConfig(max_attempts=1))

    def test_deterministic(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL),
                  FaultEvent(5.0, "n1", FaultKind.TASK_FAIL)]
        _, a = run(cl, [job], faults, resilience=ResilienceConfig())
        _, b = run(cl, [job], faults, resilience=ResilienceConfig())
        assert a.makespan == b.makespan
        assert a.lost_work_mi == b.lost_work_mi
        assert a.num_retries == b.num_retries


class TestSpeculation:
    def test_straggler_copy_wins_and_loser_is_cancelled(self):
        # n0 drops to 0.2x mid-task; without speculation the task would
        # finish at 2 + 9000/100 = 92 s.  The copy on n1 finishes around
        # t=20; the straggling original is cancelled.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.2)]
        eng, m = run(cl, [job], faults, resilience=ResilienceConfig())
        assert m.tasks_completed == 1
        assert m.num_speculative_launches == 1
        assert m.num_speculative_wins == 1
        assert m.speculative_waste_mi > 0.0  # the original's discarded work
        assert m.makespan < 40.0
        # First-finisher-wins left no copy in flight.
        assert eng._resilience.current_spec("t0") is None

    def test_speculative_win_counts_one_completion(self):
        # MetricsCollector raises on a double completion, so a clean run
        # with a speculative win proves the loser really was cancelled.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0", size=10000.0),
                                   mk("t1", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.2)]
        _, m = run(cl, [job], faults, resilience=ResilienceConfig())
        assert m.tasks_completed == 2
        assert m.num_speculative_wins >= 1
        assert m.num_speculative_wins <= m.num_speculative_launches

    def test_no_speculation_on_single_node(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.2)]
        _, m = run(cl, [job], faults, resilience=ResilienceConfig())
        assert m.tasks_completed == 1
        assert m.num_speculative_launches == 0


class TestQuarantine:
    FAULTS = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL),
              FaultEvent(4.5, "n0", FaultKind.TASK_FAIL),
              FaultEvent(7.0, "n0", FaultKind.TASK_FAIL),
              FaultEvent(30.0, "n0", FaultKind.FAILURE),
              FaultEvent(60.0, "n0", FaultKind.RECOVERY)]

    def test_no_dispatch_between_quarantine_and_recovery(self):
        # Three task failures push n0's health 0.4 -> 0.64 -> 0.784 past
        # the 0.75 threshold at t=7.  With the probation window far out,
        # only the RECOVERY fault at t=60 may lift the quarantine, so n0
        # must receive no dispatch in (7, 60) even though it sits idle
        # while n1/n2 work through the backlog.
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}", size=10000.0) for i in range(9)],
                             deadline=1e6)
        res = ResilienceConfig(quarantine_duration=10_000.0,
                               speculation_threshold=0.0)
        eng, m = run(cl, [job], self.FAULTS, resilience=res,
                     engine_cls=RecordingEngine)
        assert m.tasks_completed == 9
        assert m.num_quarantines == 1
        n0_starts = [t for t, _, nid in eng.starts if nid == "n0"]
        assert n0_starts, "n0 must have run something before the quarantine"
        assert all(t <= 7.0 or t >= 60.0 for t in n0_starts), n0_starts
        # The RECOVERY fault lifted the quarantine and reset the history.
        assert not eng._resilience.is_quarantined("n0")
        assert eng._resilience.health_score("n0") == 0.0

    def test_probation_expiry_releases_without_recovery(self):
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}", size=10000.0) for i in range(9)],
                             deadline=1e6)
        faults = self.FAULTS[:3]  # no FAILURE/RECOVERY pair
        res = ResilienceConfig(quarantine_duration=15.0,
                               speculation_threshold=0.0)
        eng, m = run(cl, [job], faults, resilience=res,
                     engine_cls=RecordingEngine)
        assert m.tasks_completed == 9
        assert m.num_quarantines >= 1
        assert not eng._resilience.is_quarantined("n0")

    def test_last_healthy_node_never_quarantined(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL),
                  FaultEvent(6.0, "n0", FaultKind.TASK_FAIL)]
        res = ResilienceConfig(health_alpha=0.9, quarantine_threshold=0.5,
                               backoff_base=0.5)
        eng, m = run(cl, [job], faults, resilience=res)
        assert m.tasks_completed == 1
        assert m.num_quarantines == 0


class TestAcceptanceSweep:
    """The ISSUE's acceptance bar: under the seed-fixed mtbf=3000 plan the
    resilience layer completes every task with strictly fewer lost MI."""

    SIM = SimConfig(epoch=30.0, scheduling_period=300.0)
    RES = ResilienceConfig(max_attempts=12, backoff_base=5.0, backoff_cap=60.0,
                           timeout_factor=20.0, health_alpha=0.6,
                           quarantine_threshold=0.5, quarantine_duration=600.0)

    @pytest.fixture(scope="class")
    def setup(self):
        cluster = cluster_profile("cluster")
        config = default_config()
        workload = build_workload_for_cluster(
            10, cluster, scale=30.0, seed=17, config=config, demand_fraction=0.8
        )
        return cluster, config, workload

    def _run(self, cluster, workload, config, faults, resilience=None):
        system = DSPSystem.build(cluster, config)
        engine = SimEngine(
            cluster, workload.jobs, system.scheduler,
            preemption=system.preemption, dsp_config=config,
            sim_config=self.SIM, faults=faults, resilience=resilience,
        )
        return engine.run()

    def test_resilience_strictly_reduces_lost_work(self, setup):
        cluster, config, workload = setup
        baseline = self._run(cluster, workload, config, None)
        plan = random_fault_plan(
            cluster, horizon=baseline.makespan * 2, rng=3,
            mtbf=3000.0, mttr=300.0, task_fail_rate=4.0,
        )
        off = self._run(cluster, workload, config, plan)
        on = self._run(cluster, workload, config, plan, resilience=self.RES)
        assert off.tasks_completed == workload.num_tasks
        assert on.tasks_completed == workload.num_tasks
        assert on.lost_work_mi < off.lost_work_mi
        assert on.num_quarantines > 0  # the mechanism actually engaged
        assert on.num_retries >= on.num_task_failures

    def test_resilience_off_by_default(self, setup):
        cluster, config, workload = setup
        m = self._run(cluster, workload, config, None)
        assert m.num_retries == 0
        assert m.num_speculative_launches == 0
        assert m.num_quarantines == 0


class TestChaosInteractions:
    """Resilience layer crossed with the chaos fault kinds, run under
    strict runtime invariants so any illegal dispatch/preemption the
    interaction produced would raise, not pass silently."""

    @staticmethod
    def run_strict(cluster, jobs, faults, resilience, engine_cls=SimEngine,
                   **kw):
        eng = engine_cls(
            cluster, jobs, HeuristicScheduler(cluster),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                                 invariants="strict"),
            faults=faults, resilience=resilience, **kw,
        )
        return eng, eng.run()

    def test_quarantine_release_while_partitioned(self):
        # Three task failures quarantine n0 at t=7; its probation expires
        # at t=17 while the node sits partitioned in [10, 25].  The
        # release must not dispatch to the unreachable node — n0 may only
        # receive work again after the heal.
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}", size=10000.0) for i in range(9)],
                             deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.TASK_FAIL),
                  FaultEvent(4.5, "n0", FaultKind.TASK_FAIL),
                  FaultEvent(7.0, "n0", FaultKind.TASK_FAIL),
                  FaultEvent(10.0, "n0", FaultKind.PARTITION),
                  FaultEvent(25.0, "n0", FaultKind.HEAL)]
        res = ResilienceConfig(quarantine_duration=10.0,
                               speculation_threshold=0.0)
        eng, m = self.run_strict(cl, [job], faults, res,
                                 engine_cls=RecordingEngine)
        assert m.tasks_completed == 9
        assert m.num_quarantines == 1
        assert not eng._resilience.is_quarantined("n0")
        n0_starts = [t for t, _, nid in eng.starts if nid == "n0"]
        assert all(t <= 7.0 or t >= 25.0 for t in n0_starts), n0_starts

    def test_speculation_target_dies_mid_attempt(self):
        # n0 starts straggling at t=2, a copy speculates onto n1, then n1
        # crashes before the copy can finish.  The copy must be cancelled
        # (no win, no double completion) and the straggling original
        # carries the task to completion.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.2),
                  FaultEvent(10.0, "n1", FaultKind.FAILURE)]
        eng, m = self.run_strict(cl, [job], faults, ResilienceConfig())
        assert m.tasks_completed == 1
        assert m.num_speculative_launches >= 1
        assert m.num_speculative_wins == 0
        assert eng._resilience.current_spec("t0") is None
        # The original ground on at 0.2x: 2 s clean + 9000 MI at 100 MIPS.
        assert m.makespan == pytest.approx(92.0, abs=1.0)

    def test_speculation_target_partitioned_mid_attempt(self):
        # Same setup but n1 partitions instead of crashing.  The copy is
        # cancelled at the partition; after the heal the still-straggling
        # original is free to speculate again and the run completes
        # cleanly either way.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0", size=10000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.2),
                  FaultEvent(10.0, "n1", FaultKind.PARTITION),
                  FaultEvent(40.0, "n1", FaultKind.HEAL)]
        eng, m = self.run_strict(cl, [job], faults, ResilienceConfig())
        assert m.tasks_completed == 1
        assert m.num_speculative_launches >= 1
        assert m.num_speculative_wins <= m.num_speculative_launches
        assert eng._resilience.current_spec("t0") is None
