"""Tests for workload/cluster validation."""

import pytest

from repro.cluster import ResourceVector, uniform_cluster
from repro.dag import Job, Task
from repro.trace import ValidationReport, WorkloadSpec, Workload, validate_workload
from repro.experiments import build_workload_for_cluster


def wl(jobs) -> Workload:
    return Workload(jobs=tuple(jobs), spec=WorkloadSpec(num_jobs=len(jobs)))


def mk(tid: str, cpu=1.0, size=1000.0, input_loc=None, input_mb=0.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=cpu, mem=0.5),
                input_mb=input_mb, input_location=input_loc)


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestValidateWorkload:
    def test_clean_workload_ok(self, cluster):
        w = build_workload_for_cluster(3, cluster, scale=80.0, seed=1)
        report = validate_workload(w, cluster)
        assert report.ok, str(report)

    def test_oversized_demand_is_error(self, cluster):
        job = Job.from_tasks("J", [mk("a", cpu=100.0)], deadline=1e6)
        report = validate_workload(wl([job]), cluster)
        assert not report.ok
        assert any("fits no node" in e for e in report.errors)

    def test_impossible_deadline_is_error(self, cluster):
        # 1000 MI at 1000 MIPS = 1 s minimum; deadline gives 0.5 s.
        job = Job.from_tasks("J", [mk("a")], deadline=0.5)
        report = validate_workload(wl([job]), cluster)
        assert any("critical path" in e for e in report.errors)

    def test_tight_deadline_is_warning(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1.2)  # cp = 1 s
        report = validate_workload(wl([job]), cluster)
        assert report.ok
        assert any("tight" in w for w in report.warnings)

    def test_unknown_input_location_is_warning(self, cluster):
        job = Job.from_tasks(
            "J", [mk("a", input_loc="ghost", input_mb=10.0)], deadline=1e6
        )
        report = validate_workload(wl([job]), cluster)
        assert any("unknown node" in w for w in report.warnings)

    def test_report_str(self, cluster):
        job = Job.from_tasks("J", [mk("a", cpu=100.0)], deadline=1e6)
        text = str(validate_workload(wl([job]), cluster))
        assert "ERROR" in text
