"""Kernel, event bus, view cache and refactor-parity tests.

Three layers of assurance for the event-kernel architecture:

* unit tests of :class:`~repro.sim.kernel.EventBus` /
  :class:`~repro.sim.kernel.Kernel` ordering and wiring guarantees;
* determinism: the same seed produces a byte-identical bus event stream
  and TraceLog across two fresh engines, with the view cache on or off;
* golden parity: the seed-fixed fig-5/fig-6 sweeps must reproduce the
  pre-refactor ``RunMetrics`` exactly (snapshot captured by
  ``scripts/gen_golden_metrics.py`` *before* the kernel decomposition).
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import ResilienceConfig, SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.experiments.figures import (
    cluster_profile,
    default_config,
    default_sim_config,
)
from repro.core import DSPScheduler
from repro.experiments.harness import (
    PREEMPTION_NAMES,
    SCHEDULER_NAMES,
    build_workload_for_cluster,
    compute_level_deadlines,
    make_preemption_policies,
    make_schedulers,
    run_preemption,
    run_scheduling,
)
from repro.sim import (
    EpochTick,
    EventBus,
    EventKind,
    Kernel,
    SimEngine,
    SimulationError,
    TaskFinished,
    TaskStarted,
    random_fault_plan,
)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))
import gen_golden_metrics as golden_script  # noqa: E402

GOLDEN_PATH = (
    pathlib.Path(__file__).resolve().parent / "data" / "golden_engine_metrics.json"
)


# ----------------------------------------------------------------- event bus
class TestEventBus:
    def test_subscribers_run_in_subscription_order(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe(EpochTick, lambda ev: seen.append("a"))
        bus.subscribe(EpochTick, lambda ev: seen.append("b"))
        bus.subscribe(EpochTick, lambda ev: seen.append("c"))
        bus.emit(EpochTick(1.0))
        assert seen == ["a", "b", "c"]

    def test_multi_type_subscription(self):
        bus = EventBus()
        seen: list[type] = []
        bus.subscribe((EpochTick, TaskStarted), lambda ev: seen.append(type(ev)))
        bus.emit(EpochTick(0.0))
        bus.emit(TaskStarted(1.0, "t", "n", 0.0))
        assert seen == [EpochTick, TaskStarted]

    def test_wildcard_runs_after_type_specific(self):
        bus = EventBus()
        seen: list[str] = []
        bus.subscribe_all(lambda ev: seen.append("wild"))
        bus.subscribe(EpochTick, lambda ev: seen.append("typed"))
        bus.emit(EpochTick(0.0))
        assert seen == ["typed", "wild"]

    def test_no_subclass_dispatch(self):
        bus = EventBus()
        seen: list[object] = []
        bus.subscribe(TaskStarted, seen.append)
        bus.emit(EpochTick(0.0))  # different concrete type: not delivered
        assert seen == []

    def test_emission_is_reentrant(self):
        bus = EventBus()
        seen: list[float] = []

        def chain(ev):
            seen.append(ev.time)
            if ev.time < 3:
                bus.emit(EpochTick(ev.time + 1))

        bus.subscribe(EpochTick, chain)
        bus.emit(EpochTick(1.0))
        assert seen == [1.0, 2.0, 3.0]

    def test_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(int, lambda ev: None)


# -------------------------------------------------------------------- kernel
class TestKernel:
    def test_one_handler_per_kind(self):
        kernel = Kernel(EventBus(), horizon=100.0)
        kernel.on(EventKind.EPOCH_TICK, lambda p: None)
        with pytest.raises(ValueError):
            kernel.on(EventKind.EPOCH_TICK, lambda p: None)

    def test_unhandled_kind_raises(self):
        kernel = Kernel(EventBus(), horizon=100.0)
        kernel.schedule(1.0, EventKind.FAULT, None)
        with pytest.raises(SimulationError, match="no handler"):
            kernel.run(until=lambda: False)

    def test_horizon_exceeded_raises(self):
        kernel = Kernel(EventBus(), horizon=10.0)
        kernel.on(EventKind.EPOCH_TICK, lambda p: None)
        kernel.schedule(11.0, EventKind.EPOCH_TICK, None)
        with pytest.raises(SimulationError, match="exceeded horizon"):
            kernel.run(until=lambda: False)

    def test_time_then_insertion_order(self):
        kernel = Kernel(EventBus(), horizon=100.0)
        seen: list[object] = []
        kernel.on(EventKind.EPOCH_TICK, seen.append)
        kernel.schedule(5.0, EventKind.EPOCH_TICK, "late")
        kernel.schedule(1.0, EventKind.EPOCH_TICK, "early-1st")
        kernel.schedule(1.0, EventKind.EPOCH_TICK, "early-2nd")
        kernel.run(until=lambda: False)
        assert seen == ["early-1st", "early-2nd", "late"]
        assert kernel.now == 5.0
        assert kernel.pending() == 0


# -------------------------------------------------------------- determinism
def _faulty_cluster() -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=2.0, mem_size=2.0, mips_per_unit=400.0)
        for i in range(4)
    ])


def _faulty_jobs() -> list[Job]:
    jobs = []
    for j in range(3):
        tasks = [
            Task(
                task_id=f"J{j}.a", job_id=f"J{j}", size_mi=8000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
            ),
            Task(
                task_id=f"J{j}.b", job_id=f"J{j}", size_mi=6000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
            ),
            Task(
                task_id=f"J{j}.c", job_id=f"J{j}", size_mi=4000.0,
                demand=ResourceVector(cpu=1.0, mem=0.5),
                parents=(f"J{j}.a", f"J{j}.b"),
            ),
        ]
        jobs.append(Job.from_tasks(f"J{j}", tasks, deadline=1e6))
    return jobs


def _recorded_run(views_cache: bool):
    """One seed-fixed faulty resilient run; returns (event reprs, trace
    segments, metrics dict)."""
    cluster = _faulty_cluster()
    faults = random_fault_plan(
        cluster, horizon=400.0, rng=11, mtbf=120.0, mttr=40.0,
        straggler_rate=0.5, task_fail_rate=0.5,
    )
    eng = SimEngine(
        cluster,
        _faulty_jobs(),
        HeuristicScheduler(cluster),
        sim_config=SimConfig(
            epoch=2.0, scheduling_period=20.0, views_cache=views_cache
        ),
        faults=faults,
        resilience=ResilienceConfig(),
        record_trace=True,
    )
    stream: list[str] = []
    eng.runtime.bus.subscribe_all(lambda ev: stream.append(repr(ev)))
    metrics = eng.run()
    return stream, eng.trace.segments, metrics.as_dict()


class TestDeterminism:
    def test_same_seed_byte_identical_stream_and_trace(self):
        s1, t1, m1 = _recorded_run(views_cache=True)
        s2, t2, m2 = _recorded_run(views_cache=True)
        assert "\n".join(s1) == "\n".join(s2)
        assert t1 == t2
        assert m1 == m2

    def test_views_cache_does_not_change_behaviour(self):
        s_on, t_on, m_on = _recorded_run(views_cache=True)
        s_off, t_off, m_off = _recorded_run(views_cache=False)
        assert "\n".join(s_on) == "\n".join(s_off)
        assert t_on == t_off
        assert m_on == m_off

    def test_stream_is_nonempty_and_exercises_faults(self):
        stream, segments, metrics = _recorded_run(views_cache=True)
        assert any("FaultInjected" in line for line in stream)
        assert any("TaskFinished" in line for line in stream)
        assert segments
        assert metrics["tasks_completed"] == 9.0


# ---------------------------------------------------------------- view cache
class TestViewCache:
    def test_cache_rebuilds_only_dirty_nodes(self):
        cluster = cluster_profile("cluster", 1.0)
        cfg = default_config()
        workload = build_workload_for_cluster(
            4, cluster, scale=10.0, seed=11, config=cfg, demand_fraction=0.8
        )
        policy = make_preemption_policies(cfg)["DSP"]
        engine = SimEngine(
            cluster=cluster,
            jobs=workload.jobs,
            scheduler=DSPScheduler(cluster, cfg, ilp_task_limit=0),
            preemption=policy,
            dsp_config=cfg,
            sim_config=default_sim_config(),
            task_deadlines=compute_level_deadlines(workload, cluster, cfg),
            dependency_aware_dispatch=policy.respects_dependencies,
        )
        metrics = engine.run()
        views = engine.runtime.views
        assert views.enabled
        assert views.rebuilds > 0
        assert metrics.tasks_completed == sum(
            len(j.tasks) for j in workload.jobs
        )

    def test_ancestor_closures_memoized_at_init(self):
        a = Task(task_id="a", job_id="J", size_mi=1.0,
                 demand=ResourceVector(cpu=0.1, mem=0.1))
        b = Task(task_id="b", job_id="J", size_mi=1.0,
                 demand=ResourceVector(cpu=0.1, mem=0.1), parents=("a",))
        c = Task(task_id="c", job_id="J", size_mi=1.0,
                 demand=ResourceVector(cpu=0.1, mem=0.1), parents=("a",))
        d = Task(task_id="d", job_id="J", size_mi=1.0,
                 demand=ResourceVector(cpu=0.1, mem=0.1), parents=("b", "c"))
        job = Job.from_tasks("J", [a, b, c, d], deadline=1e6)
        cluster = Cluster([
            NodeSpec(node_id="n0", cpu_size=1.0, mem_size=1.0, mips_per_unit=100.0)
        ])
        eng = SimEngine(cluster, [job], HeuristicScheduler(cluster))
        anc = eng.runtime.state.ancestors
        assert anc["a"] == frozenset()
        assert anc["b"] == anc["c"] == frozenset({"a"})
        assert anc["d"] == frozenset({"a", "b", "c"})


# ------------------------------------------------------------- golden parity
@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def golden_world():
    cluster = cluster_profile(
        golden_script.GOLDEN_PROFILE, golden_script.GOLDEN_NODE_SCALE
    )
    cfg = default_config()
    workload = build_workload_for_cluster(
        golden_script.GOLDEN_NUM_JOBS,
        cluster,
        scale=golden_script.GOLDEN_SCALE,
        seed=golden_script.GOLDEN_SEED + golden_script.GOLDEN_NUM_JOBS,
        config=cfg,
        demand_fraction=golden_script.GOLDEN_DEMAND_FRACTION,
    )
    return cluster, cfg, workload


class TestGoldenParity:
    """The refactored engine must reproduce the pre-refactor snapshot
    *exactly* — every RunMetrics field, bit for bit."""

    def test_recipe_unchanged(self, golden):
        assert golden["recipe"] == {
            "profile": golden_script.GOLDEN_PROFILE,
            "node_scale": golden_script.GOLDEN_NODE_SCALE,
            "num_jobs": golden_script.GOLDEN_NUM_JOBS,
            "scale": golden_script.GOLDEN_SCALE,
            "seed": golden_script.GOLDEN_SEED,
            "demand_fraction": golden_script.GOLDEN_DEMAND_FRACTION,
        }

    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_fig5_scheduler_parity(self, golden, golden_world, name):
        cluster, cfg, workload = golden_world
        scheduler = make_schedulers(cluster, cfg)[name]
        metrics = run_scheduling(
            workload, cluster, scheduler, config=cfg,
            sim_config=default_sim_config(),
        )
        assert metrics.as_dict() == golden["runs"][f"fig5/{name}"]

    @pytest.mark.parametrize("name", PREEMPTION_NAMES)
    def test_fig6_preemption_parity(self, golden, golden_world, name):
        cluster, cfg, workload = golden_world
        policy = make_preemption_policies(cfg)[name]
        metrics = run_preemption(
            workload, cluster, policy, config=cfg,
            sim_config=default_sim_config(),
        )
        assert metrics.as_dict() == golden["runs"][f"fig6/{name}"]
