"""Tests for the checkpoint–restart model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import checkpoint_count, lost_work_mi, retained_work_mi


class TestRetainedWork:
    def test_perfect_checkpoint_retains_all(self):
        assert retained_work_mi(1234.5, 1000.0, 0.0) == 1234.5

    def test_interval_rolls_back_to_boundary(self):
        # interval 10 s at 100 MIPS -> checkpoints every 1000 MI.
        assert retained_work_mi(2500.0, 100.0, 10.0) == 2000.0

    def test_exact_boundary_kept(self):
        assert retained_work_mi(2000.0, 100.0, 10.0) == 2000.0

    def test_before_first_checkpoint_loses_all(self):
        assert retained_work_mi(999.0, 100.0, 10.0) == 0.0

    def test_zero_work(self):
        assert retained_work_mi(0.0, 100.0, 10.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            retained_work_mi(-1.0, 100.0, 10.0)
        with pytest.raises(ValueError):
            retained_work_mi(1.0, 0.0, 10.0)
        with pytest.raises(ValueError):
            retained_work_mi(1.0, 100.0, -1.0)


class TestCounts:
    def test_checkpoint_count(self):
        assert checkpoint_count(2500.0, 100.0, 10.0) == 2
        assert checkpoint_count(999.0, 100.0, 10.0) == 0
        assert checkpoint_count(2500.0, 100.0, 0.0) == 0

    def test_lost_work(self):
        assert lost_work_mi(2500.0, 100.0, 10.0) == pytest.approx(500.0)
        assert lost_work_mi(2500.0, 100.0, 0.0) == 0.0

    def test_count_one_ulp_boundary_clamp(self):
        """When floor(work/quantum) * quantum floats one ulp *above* the
        work, the naive count claims a checkpoint past the completed
        work.  The clamp (the count-side twin of retained_work_mi's)
        must keep count * quantum <= work."""
        # 390 * 0.07 == 27.300000000000004 > 27.3 in IEEE arithmetic.
        work, rate, interval = 27.3, 1.0, 0.07
        quantum = rate * interval
        import math
        assert math.floor(work / quantum) * quantum > work  # the hazard
        count = checkpoint_count(work, rate, interval)
        assert count * quantum <= work
        # Retained snaps the *value* down to the work; the count stays
        # within one boundary of it.
        kept = retained_work_mi(work, rate, interval)
        assert 0.0 <= kept - count * quantum <= quantum


class TestCountBoundaryProperty:
    @given(
        work=st.floats(min_value=0.0, max_value=1e6),
        rate=st.floats(min_value=1.0, max_value=1e4),
        interval=st.floats(min_value=1e-6, max_value=1e3),
    )
    def test_count_consistent_with_retained(self, work, rate, interval):
        """count is the index of the boundary retained_work_mi snaps to:
        count * quantum never exceeds the work, matches the retained
        work away from the clamp, and is within one quantum of it."""
        quantum = rate * interval
        count = checkpoint_count(work, rate, interval)
        kept = retained_work_mi(work, rate, interval)
        assert count >= 0
        assert count * quantum <= work
        if kept == count * quantum:
            # The common (unclamped) case: exact agreement.
            pass
        else:
            # Either side may have clamped by one ulp; they can differ
            # by at most one boundary.
            assert abs(kept - count * quantum) <= quantum
        assert work - count * quantum <= quantum * (1 + 1e-9) + 1e-9


class TestProperties:
    @given(
        work=st.floats(min_value=0.0, max_value=1e6),
        rate=st.floats(min_value=1.0, max_value=1e4),
        interval=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_retained_bounded_and_consistent(self, work, rate, interval):
        kept = retained_work_mi(work, rate, interval)
        assert 0.0 <= kept <= work
        assert kept + lost_work_mi(work, rate, interval) == pytest.approx(work)
        quantum = interval * rate
        if quantum > 1e-9 and kept < work:
            # Away from the clamp, retained work sits on a checkpoint
            # boundary (an exact multiple of the quantum).
            assert kept / quantum == pytest.approx(round(kept / quantum))


class TestEngineIntegration:
    def test_interval_checkpoint_loses_partial_work(self):
        """With a coarse checkpoint interval, a preemption rolls the victim
        back and the makespan grows vs the perfect-checkpoint run."""
        from repro.cluster import Cluster, NodeSpec, ResourceVector
        from repro.config import DSPConfig, SimConfig
        from repro.core import HeuristicScheduler
        from repro.dag import Job, Task
        from repro.sim import SimEngine
        from tests.test_engine import ScriptedPolicy

        def build(interval: float):
            cl = Cluster([NodeSpec(node_id="n0", cpu_size=1.0, mem_size=1.0,
                                   mips_per_unit=500.0)])
            long = Task(task_id="long", job_id="J", size_mi=5000.0,
                        demand=ResourceVector(cpu=1.0, mem=0.5))
            short = Task(task_id="short", job_id="J", size_mi=500.0,
                         demand=ResourceVector(cpu=1.0, mem=0.5))
            job = Job.from_tasks("J", [long, short], deadline=1e6)
            cfg = DSPConfig(checkpoint_interval=interval)
            eng = SimEngine(
                cl, [job], HeuristicScheduler(cl, cfg),
                preemption=ScriptedPolicy("short", "long"),
                dsp_config=cfg,
                sim_config=SimConfig(epoch=0.7, scheduling_period=10.0),
            )
            return eng.run()

        perfect = build(0.0)
        coarse = build(5.0)   # one checkpoint per 5 s of progress
        assert coarse.makespan > perfect.makespan


class TestSeededProperties:
    """Seeded random sweep of the retention model.

    Note retained work is *not* monotone in ``interval`` in general:
    shrinking the interval moves every checkpoint boundary, and a small
    quantum can land its last boundary below a large quantum that happens
    to divide the work exactly.  Monotonicity does hold along chains
    where each interval is an integer multiple of the previous one —
    coarser boundaries are then a subset of finer ones — and that is the
    form worth asserting.
    """

    def test_general_monotonicity_is_false(self):
        # Counterexample: 30 MI at 1 MIPS.  interval=10 retains all 30
        # (exact boundary), the *smaller* interval=7 retains only 28.
        from repro.sim import retained_work_mi as retained
        assert retained(30.0, 1.0, 10.0) == 30.0
        assert retained(30.0, 1.0, 7.0) == 28.0

    def test_seeded_sweep(self):
        import numpy as np
        from repro.sim import retained_work_mi as retained

        rng = np.random.default_rng(20260806)
        for _ in range(500):
            work = float(rng.uniform(0.0, 1e5))
            rate = float(rng.uniform(1.0, 2e3))
            base = float(rng.uniform(0.01, 60.0))
            # interval = 0 is the perfect checkpoint: everything kept.
            assert retained(work, rate, 0.0) == work
            # Nested-interval chain: each coarser interval's boundaries
            # are a subset of the finer one's, so retention cannot grow.
            chain = [retained(work, rate, base * m) for m in (1, 2, 4, 8, 16)]
            for kept in chain:
                assert 0.0 <= kept <= work
            for finer, coarser in zip(chain, chain[1:]):
                assert coarser <= finer + 1e-9
