"""Tests for 2D parameter-sensitivity grids and heatmap rendering."""

import pytest

from repro.experiments import GridResult, heatmap, sweep_grid
from repro.sim.metrics import MetricsCollector


def tiny_grid() -> GridResult:
    def metrics(makespan):
        mc = MetricsCollector()
        mc.register_job("J", 0.0, 1e9)
        mc.register_task("t", "J")
        mc.record_task_completion("t", makespan)
        mc.record_job_completion("J", makespan)
        return mc.finalize(makespan)

    cells = {
        (0.1, 1.5): metrics(10.0),
        (0.1, 3.0): metrics(20.0),
        (0.9, 1.5): metrics(30.0),
        (0.9, 3.0): metrics(40.0),
    }
    return GridResult(
        row_param="gamma", col_param="rho",
        row_values=(0.1, 0.9), col_values=(1.5, 3.0), cells=cells,
    )


class TestGridResult:
    def test_metric_matrix(self):
        grid = tiny_grid()
        assert grid.metric("makespan") == [[10.0, 20.0], [30.0, 40.0]]


class TestHeatmap:
    def test_renders_values_and_shades(self):
        out = heatmap(tiny_grid(), "makespan")
        assert "gamma" in out and "rho" in out
        assert "10" in out and "40" in out
        assert "@" in out  # the max cell gets the darkest shade

    def test_invert(self):
        normal = heatmap(tiny_grid(), "makespan")
        inverted = heatmap(tiny_grid(), "makespan", invert=True)
        assert normal != inverted

    def test_flat_grid_ok(self):
        grid = tiny_grid()
        out = heatmap(grid, "num_preemptions")  # all zero
        assert "num_preemptions" in out


class TestSweepGrid:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            sweep_grid("nope", (1.0,), "rho", (1.5,))
        with pytest.raises(ValueError, match="must differ"):
            sweep_grid("rho", (1.5,), "rho", (2.0,))

    def test_small_real_grid(self):
        grid = sweep_grid(
            "gamma", (0.2, 0.8), "rho", (1.5, 4.0),
            num_jobs=4, scale=100.0, seed=3,
        )
        assert len(grid.cells) == 4
        for m in grid.cells.values():
            assert m.tasks_completed > 0
        text = heatmap(grid, "num_preemptions")
        assert "gamma" in text
