"""Durability tests: write-ahead journal framing, versioned snapshots,
rotation/atomicity, and crash-and-resume golden parity.

The parity class is the load-bearing one: for seeded chaos runs across
every policy, a run crashed at a random event and recovered from the
latest valid snapshot must replay to a **byte-identical** journal and
identical trace + ``RunMetrics`` vs the uninterrupted run.
"""

import json
import pathlib
import sys

import numpy as np
import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import DSPConfig, SimConfig, SnapshotConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    FaultEvent,
    FaultKind,
    JournalCorrupt,
    JournalWriter,
    SimEngine,
    SimulatedCrash,
    SnapshotError,
    SnapshotVersionError,
    TaskFinished,
    inject_crash,
    latest_valid_snapshot,
    load_snapshot,
    read_journal,
    snapshot_engine,
    summarize_journal,
    write_snapshot,
)
from repro.sim.journal import (
    decode_bus_event,
    decode_payload,
    encode_bus_event,
    encode_payload,
)
from repro.sim.snapshot import SNAPSHOT_VERSION


# ---------------------------------------------------------------- fixtures
def mk(tid: str, size=5000.0, parents=()) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5), parents=parents)


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def small_engine(tmp_path, **kw) -> SimEngine:
    cl = one_lane(2)
    job = Job.from_tasks(
        "J", [mk("t0"), mk("t1"), mk("t2", parents=("t0",))], deadline=1e6
    )
    defaults = dict(
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        journal=tmp_path / "run.journal",
        snapshots=SnapshotConfig(directory=str(tmp_path / "snaps"), every_events=5),
    )
    defaults.update(kw)
    return SimEngine(cl, [job], HeuristicScheduler(cl), **defaults)


# ----------------------------------------------------------------- journal
class TestJournalFraming:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(path, fsync_every=2)
        records = [{"r": "pop", "i": i, "x": [1.5, None, "s"]} for i in range(7)]
        for r in records:
            w.append(r)
        w.close()
        got, valid = read_journal(path)
        assert got == records
        assert valid == path.stat().st_size

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(path)
        for i in range(3):
            w.append({"i": i})
        w.close()
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # tear the last record mid-payload
        got, valid = read_journal(path)
        assert [r["i"] for r in got] == [0, 1]
        assert valid < len(data) - 4

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(path)
        for i in range(3):
            w.append({"i": i})
        w.close()
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0xFF  # flip a byte well before the tail
        path.write_bytes(bytes(data))
        with pytest.raises(JournalCorrupt):
            read_journal(path)

    def test_truncate_at_reopens_for_resume(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(path)
        w.append({"i": 0})
        w.append({"i": 1})
        offset = w.offset
        w.append({"i": 2})  # the post-snapshot suffix a crash leaves
        w.close()
        w2 = JournalWriter(path, truncate_at=offset)
        assert w2.offset == offset
        w2.append({"i": "replayed"})
        w2.close()
        got, _ = read_journal(path)
        assert [r["i"] for r in got] == [0, 1, "replayed"]

    def test_summarize(self, tmp_path):
        path = tmp_path / "j.journal"
        w = JournalWriter(path)
        w.append({"r": "pop", "t": 1.0, "q": 0, "k": "epoch_tick", "p": None})
        w.append({"r": "bus", "e": "EpochTick", "a": {"time": 1.0}})
        w.close()
        records, _ = read_journal(path)
        text = summarize_journal(records)
        assert "epoch_tick" in text and "EpochTick" in text


class TestCodecs:
    @pytest.mark.parametrize("payload", [
        None,
        "J0001",
        ("J0001.T0001", 3),
        FaultEvent(12.5, "n0", FaultKind.SLOWDOWN, factor=0.25),
    ])
    def test_payload_round_trip(self, payload):
        encoded = encode_payload(payload)
        assert json.loads(json.dumps(encoded)) == encoded  # pure JSON
        assert decode_payload(encoded) == payload

    def test_bus_event_round_trip(self):
        ev = TaskFinished(
            time=3.5, task_id="t0", node_id="n0", job_id="J",
            latency=1.25, speculative=False, job_completed=True,
        )
        encoded = encode_bus_event(ev)
        assert json.loads(json.dumps(encoded)) == encoded
        assert decode_bus_event(encoded) == ev

    def test_fast_renderers_match_json_dumps(self):
        """The recorder's compiled hot-path renderers must stay
        byte-identical to the reference json.dumps encoding — the soak
        harness golden-compares journals byte for byte, and mixed
        fast/reference writers (e.g. tests vs the live recorder) must
        interleave seamlessly in one file."""
        import dataclasses

        import repro.sim.kernel as kk
        from repro.sim.events import Event, EventKind
        from repro.sim.journal import _render_bus, _render_pop, encode_pop

        dumps = lambda r: json.dumps(r, separators=(",", ":"))  # noqa: E731

        # Every concrete BusEvent type, with awkward strings / int-valued
        # float fields to exercise the dynamic scalar path.
        count = 0
        for cls in vars(kk).values():
            if not (isinstance(cls, type) and issubclass(cls, kk.BusEvent)
                    and cls is not kk.BusEvent
                    and dataclasses.is_dataclass(cls)):
                continue
            vals = {}
            for i, f in enumerate(dataclasses.fields(cls)):
                ts = str(f.type)
                if "float" in ts:
                    vals[f.name] = 0 if i % 2 else 3.125  # int in a float slot
                elif "int" in ts:
                    vals[f.name] = 7
                elif "bool" in ts:
                    vals[f.name] = True
                else:
                    vals[f.name] = 'id-"quote"-\\back\tslash'
            ev = cls(**vals)
            assert _render_bus(ev) == dumps(
                {"r": "bus", **encode_bus_event(ev)}
            ), cls.__name__
            count += 1
        assert count > 10  # the sweep actually found the event taxonomy

        for pop in [
            Event(time=1.5, seq=3, kind=EventKind.EPOCH_TICK, payload=None),
            Event(time=0.0, seq=0, kind=EventKind.JOB_ARRIVAL, payload="J1"),
            Event(time=2.25, seq=9, kind=EventKind.TASK_FINISH,
                  payload=('t"\\u', 4)),
            Event(time=2.0, seq=1, kind=EventKind.FAULT,
                  payload=FaultEvent(12.5, "n0", FaultKind.SLOWDOWN, 0.25)),
        ]:
            assert _render_pop(pop) == dumps(encode_pop(pop))


# --------------------------------------------------------------- snapshots
class TestSnapshotFormat:
    def test_snapshot_is_pure_json(self, tmp_path):
        engine = small_engine(tmp_path)
        data = engine.snapshot()
        assert json.loads(json.dumps(data)) == data

    def test_future_version_fails_loudly(self, tmp_path):
        engine = small_engine(tmp_path)
        data = engine.snapshot()
        data["version"] = SNAPSHOT_VERSION + 1
        path = tmp_path / "snapshot-99999999.json"
        write_snapshot(path, data)
        with pytest.raises(SnapshotVersionError):
            load_snapshot(path)
        # ...even via the corruption-tolerant directory scan: a future
        # version is an operator error, not a crash artifact.
        with pytest.raises(SnapshotVersionError):
            latest_valid_snapshot(tmp_path)

    def test_unknown_format_fails(self, tmp_path):
        path = tmp_path / "snapshot-00000001.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(SnapshotVersionError):
            load_snapshot(path)

    def test_corrupt_file_skipped_by_latest(self, tmp_path):
        engine = small_engine(tmp_path)
        good = engine.snapshot()
        write_snapshot(tmp_path / "snapshot-00000001.json", good)
        (tmp_path / "snapshot-00000002.json").write_text("{ torn garba")
        path, data = latest_valid_snapshot(tmp_path)
        assert path.name == "snapshot-00000001.json"
        assert data == good

    def test_empty_dir_returns_none(self, tmp_path):
        assert latest_valid_snapshot(tmp_path) is None
        assert latest_valid_snapshot(tmp_path / "missing") is None

    def test_io_fault_mid_write_preserves_previous(self, tmp_path):
        engine = small_engine(tmp_path)
        data = engine.snapshot()
        path = tmp_path / "snapshot-00000001.json"
        write_snapshot(path, data)

        def boom() -> None:
            raise SimulatedCrash("disk died mid-write")

        with pytest.raises(SimulatedCrash):
            write_snapshot(path, {**data, "pops": 999}, io_fault=boom)
        # The atomic tmp+rename protocol: the old file is untouched.
        assert load_snapshot(path) == data


class TestSnapshotManager:
    def test_cadence_and_rotation(self, tmp_path):
        cfg = SnapshotConfig(
            directory=str(tmp_path / "snaps"), every_events=10, keep=3
        )
        engine = small_engine(tmp_path, snapshots=cfg)
        engine.run()
        pops = engine.runtime.kernel.pops
        assert engine.snapshots.written == pops // 10
        rotated = sorted(p.name for p in (tmp_path / "snaps").iterdir()
                         if p.name.endswith(".json"))
        assert len(rotated) == min(3, engine.snapshots.written)
        # Named by pop count: numbering is monotone across resumes.
        assert rotated[-1] == f"snapshot-{(pops // 10) * 10:08d}.json"


class TestRestoreGuards:
    def test_fingerprint_mismatch_rejected(self, tmp_path):
        engine = small_engine(tmp_path)
        data = engine.snapshot()
        other = small_engine(tmp_path / "b", record_trace=True)  # different wiring
        with pytest.raises(SnapshotError, match="fingerprint"):
            from repro.sim import restore_into
            restore_into(other, data)

    def test_restore_into_run_engine_rejected(self, tmp_path):
        engine = small_engine(tmp_path)
        data = engine.snapshot()
        engine.run()
        with pytest.raises(SnapshotError, match="fresh"):
            from repro.sim import restore_into
            restore_into(engine, data)

    def test_scheduler_without_protocol_rejected_when_rounds_remain(self, tmp_path):
        class OpaqueScheduler:
            """No snapshot_state/restore_state; cross-round state lost."""

            def __init__(self, inner):
                self._inner = inner

            def schedule(self, jobs):
                return self._inner.schedule(jobs)

        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0")], deadline=1e6)
        engine = SimEngine(
            cl, [job], OpaqueScheduler(HeuristicScheduler(cl)),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        # Before run() no job has arrived: future rounds remain.
        with pytest.raises(SnapshotError, match="snapshot_state"):
            snapshot_engine(engine)


# ----------------------------------------------------- crash-resume parity
class TestCrashResumeParity:
    """Golden parity: >= 5 seeded chaos runs per policy, each crashed at
    a random event, recovered, and compared byte-for-byte."""

    @pytest.mark.parametrize("policy", ["dsp", "fcfs", "srpt"])
    def test_seeded_chaos_crash_resume(self, policy, tmp_path):
        import soak

        for seed in range(5):
            # Indices that hit (policy, chaos, resilience) combinations:
            # walk soak's coprime grid until the policy matches.
            index = seed * len(soak.POLICY_NAMES) + soak.POLICY_NAMES.index(policy)
            case = soak.build_case(index, base_seed=100 + seed)
            workload, cluster, plan = soak.case_inputs(case)
            outcome = soak.run_one_crash_case(
                case, workload, cluster, plan, tmp_path / f"fail-{index}"
            )
            assert outcome.status in ("ok", "abort"), (
                f"policy={policy} seed={seed} case={case.describe()}: "
                f"{outcome.error_type}: {outcome.message}"
            )

    def test_resume_restores_error_context_counters(self, tmp_path):
        """After restore, the kernel's pop counter and position() context
        continue from the snapshot, not from zero (satellite: mid-run
        errors carry sim time + last event)."""
        engine = small_engine(tmp_path)
        engine.run()
        total = engine.runtime.kernel.pops

        engine2 = small_engine(tmp_path / "b")
        inject_crash(engine2, at_pop=total // 2)
        with pytest.raises(SimulatedCrash, match=r"t=\d"):
            engine2.run()
        found = latest_valid_snapshot(tmp_path / "b" / "snaps")
        assert found is not None
        _, data = found
        cl = one_lane(2)
        job = Job.from_tasks(
            "J", [mk("t0"), mk("t1"), mk("t2", parents=("t0",))], deadline=1e6
        )
        engine3 = SimEngine.restore(
            data, cl, [job], HeuristicScheduler(cl),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
            journal=tmp_path / "b" / "run.journal",
            snapshots=SnapshotConfig(
                directory=str(tmp_path / "b" / "snaps"), every_events=5
            ),
        )
        assert engine3.runtime.kernel.pops == data["kernel"]["pops"]
        assert "last popped" in engine3.runtime.kernel.position()
        engine3.run()
        assert engine3.runtime.kernel.pops == total
        # The journal rewrote its suffix byte-identically.
        ref = (tmp_path / "run.journal").read_bytes()
        rec = (tmp_path / "b" / "run.journal").read_bytes()
        assert rec == ref
