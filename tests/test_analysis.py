"""Tests for post-run analysis (fairness, slowdowns, utilization) and
ASCII chart rendering."""

import pytest

from repro.cluster import uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, chain_dag
from repro.experiments import (
    analysis_report,
    ascii_chart,
    jain_fairness,
    job_stats,
    percentiles,
    slowdowns,
    sparkline,
    utilization,
)
from repro.sim import SimEngine


@pytest.fixture(scope="module")
def finished_engine():
    cluster = uniform_cluster(2, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
    jobs = [
        Job.from_tasks(f"J{i}", chain_dag(f"J{i}", 3, size_mi=1000.0), deadline=100.0)
        for i in range(3)
    ]
    engine = SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
    )
    engine.run()
    return engine


class TestJobStats:
    def test_one_entry_per_job(self, finished_engine):
        stats = job_stats(finished_engine)
        assert [s.job_id for s in stats] == ["J0", "J1", "J2"]

    def test_slowdown_at_least_one(self, finished_engine):
        for s in job_stats(finished_engine):
            assert s.slowdown >= 1.0 - 1e-9

    def test_response_time_positive(self, finished_engine):
        for s in job_stats(finished_engine):
            assert s.response_time > 0

    def test_met_deadline(self, finished_engine):
        assert all(s.met_deadline for s in job_stats(finished_engine))

    def test_unfinished_engine_rejected(self):
        cluster = uniform_cluster(1, cpu_size=2.0, mem_size=2.0)
        job = Job.from_tasks("J", chain_dag("J", 2), deadline=1e9)
        engine = SimEngine(cluster, [job], HeuristicScheduler(cluster))
        with pytest.raises(ValueError, match="unfinished"):
            job_stats(engine)


class TestFairness:
    def test_equal_values_perfect(self):
        assert jain_fairness([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_value(self):
        assert jain_fairness([5.0]) == pytest.approx(1.0)

    def test_maximally_unfair(self):
        # One job got everything: index -> 1/n.
        assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness([1.0, -1.0])

    def test_all_zero_is_fair(self):
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestPercentilesAndUtilization:
    def test_percentiles(self):
        pct = percentiles(list(range(1, 101)), points=(50, 99))
        assert pct[50] == pytest.approx(50.5)
        assert pct[99] > 99

    def test_percentiles_empty_rejected(self):
        with pytest.raises(ValueError):
            percentiles([])

    def test_utilization_bounds(self, finished_engine):
        u = utilization(finished_engine)
        assert 0.0 < u <= 1.0

    def test_report_renders(self, finished_engine):
        text = analysis_report(finished_engine)
        assert "fairness" in text and "utilization" in text
        assert "p50" in text


class TestSparkline:
    def test_constant(self):
        assert len(sparkline([1.0, 1.0, 1.0])) == 3

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_rises(self):
        s = sparkline([0.0, 1.0, 2.0, 3.0])
        assert s[0] < s[-1]


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            [1, 2, 3], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]},
            title="trend",
        )
        assert "trend" in out
        assert "o=up" in out and "x=down" in out
        assert "o" in out and "x" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {})
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})  # misaligned
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]})  # single point
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0, 2.0]}, width=5)

    def test_flat_series_ok(self):
        out = ascii_chart([0, 10], {"flat": [5.0, 5.0]})
        assert "o=flat" in out

    def test_axis_labels(self):
        out = ascii_chart([0, 100], {"a": [0.0, 50.0]})
        assert "100" in out and "50" in out
