"""Tests for ResourceVector."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import ResourceVector, ZERO_RESOURCES

nonneg = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
vectors = st.builds(ResourceVector, cpu=nonneg, mem=nonneg, disk=nonneg, bandwidth=nonneg)


class TestConstruction:
    def test_defaults_zero(self):
        v = ResourceVector()
        assert v.as_tuple() == (0.0, 0.0, 0.0, 0.0)

    @pytest.mark.parametrize("dim", ["cpu", "mem", "disk", "bandwidth"])
    def test_negative_rejected(self, dim):
        with pytest.raises(ValueError, match=dim):
            ResourceVector(**{dim: -1.0})

    def test_zero_constant(self):
        assert ZERO_RESOURCES.is_zero()

    def test_immutable(self):
        with pytest.raises(Exception):
            ResourceVector().cpu = 1.0  # type: ignore[misc]


class TestArithmetic:
    def test_add(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(10, 20, 30, 40)
        assert (a + b).as_tuple() == (11, 22, 33, 44)

    def test_sub_clamps_at_zero(self):
        a = ResourceVector(1, 1, 1, 1)
        b = ResourceVector(2, 0.5, 2, 0.5)
        assert (a - b).as_tuple() == (0.0, 0.5, 0.0, 0.5)

    def test_scalar_mul(self):
        assert (ResourceVector(1, 2, 3, 4) * 2).as_tuple() == (2, 4, 6, 8)

    def test_rmul(self):
        assert (3 * ResourceVector(1, 0, 0, 0)).cpu == 3

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector(1, 1, 1, 1) * -1


class TestComparisons:
    def test_fits_within_true(self):
        assert ResourceVector(1, 1, 1, 1).fits_within(ResourceVector(2, 2, 2, 2))

    def test_fits_within_equal(self):
        v = ResourceVector(2, 2, 2, 2)
        assert v.fits_within(v)

    def test_fits_within_single_dim_fails(self):
        assert not ResourceVector(3, 1, 1, 1).fits_within(ResourceVector(2, 2, 2, 2))

    def test_dot(self):
        a = ResourceVector(1, 2, 3, 4)
        b = ResourceVector(4, 3, 2, 1)
        assert a.dot(b) == pytest.approx(4 + 6 + 6 + 4)

    def test_norm1(self):
        assert ResourceVector(1, 2, 3, 4).norm1() == 10

    def test_iter_order(self):
        assert list(ResourceVector(1, 2, 3, 4)) == [1, 2, 3, 4]


class TestProperties:
    @given(vectors, vectors)
    def test_add_commutes(self, a, b):
        assert (a + b).as_tuple() == (b + a).as_tuple()

    @given(vectors, vectors)
    def test_subtract_then_fits(self, a, b):
        # After giving back what was taken, the original demand fits again.
        total = a + b
        free = total - a
        assert b.fits_within(free + a)

    @given(vectors)
    def test_dot_with_zero_is_zero(self, v):
        assert v.dot(ZERO_RESOURCES) == 0.0

    @given(vectors)
    def test_fits_within_self_plus_anything(self, v):
        assert v.fits_within(v + ResourceVector(1, 1, 1, 1))
