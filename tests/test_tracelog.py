"""Tests for execution trace recording and Gantt rendering."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task, chain_dag
from repro.sim import SimEngine, TraceLog, TraceSegment, gantt_chart


class TestTraceSegment:
    def test_valid(self):
        s = TraceSegment("t", "n", 0.0, 5.0, "run", overhead=1.0)
        assert s.duration == 5.0

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError):
            TraceSegment("t", "n", 5.0, 4.0, "run")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceSegment("t", "n", 0.0, 1.0, "sleep")

    def test_overhead_must_fit(self):
        with pytest.raises(ValueError):
            TraceSegment("t", "n", 0.0, 1.0, "run", overhead=2.0)


class TestTraceLog:
    def test_open_close(self):
        log = TraceLog()
        log.open_segment("t", "n", 0.0, "run")
        log.close_segment("t", 3.0)
        assert len(log.segments) == 1
        assert log.segments[0].end == 3.0

    def test_double_open_rejected(self):
        log = TraceLog()
        log.open_segment("t", "n", 0.0, "run")
        with pytest.raises(RuntimeError):
            log.open_segment("t", "n", 1.0, "run")

    def test_close_without_open_is_noop(self):
        log = TraceLog()
        log.close_segment("ghost", 1.0)
        assert log.segments == ()

    def test_queries(self):
        log = TraceLog()
        log.open_segment("a", "n1", 0.0, "run")
        log.close_segment("a", 2.0)
        log.open_segment("b", "n1", 2.0, "stall")
        log.close_segment("b", 5.0)
        log.open_segment("a", "n2", 3.0, "run")
        log.close_segment("a", 4.0)
        assert [s.task_id for s in log.for_node("n1")] == ["a", "b"]
        assert [s.node_id for s in log.for_task("a")] == ["n1", "n2"]
        assert log.busy_time("n1") == pytest.approx(5.0)


class TestEngineRecording:
    def test_chain_trace_segments(self):
        cluster = uniform_cluster(1, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        job = Job.from_tasks("J", chain_dag("J", 3, size_mi=1000.0), deadline=1e6)
        engine = SimEngine(
            cluster, [job], HeuristicScheduler(cluster),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
            record_trace=True,
        )
        engine.run()
        assert engine.trace is not None
        segs = engine.trace.segments
        assert len(segs) == 3  # one run segment per task, no preemptions
        assert all(s.kind == "run" for s in segs)
        # Chain: segments strictly sequential.
        ordered = sorted(segs, key=lambda s: s.start)
        for a, b in zip(ordered, ordered[1:]):
            assert b.start >= a.end - 1e-9

    def test_trace_off_by_default(self):
        cluster = uniform_cluster(1, cpu_size=2.0, mem_size=2.0)
        job = Job.from_tasks("J", chain_dag("J", 2), deadline=1e9)
        engine = SimEngine(cluster, [job], HeuristicScheduler(cluster))
        assert engine.trace is None

    def test_stall_segments_recorded(self):
        from tests.test_engine import FixedScheduler
        from repro.core import Schedule, TaskAssignment

        cluster = Cluster([
            NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
            for i in range(2)
        ])
        a = Task(task_id="a", job_id="J", size_mi=4000.0,
                 demand=ResourceVector(cpu=1.0, mem=0.5))
        b = Task(task_id="b", job_id="J", size_mi=500.0,
                 demand=ResourceVector(cpu=1.0, mem=0.5), parents=("a",))
        job = Job.from_tasks("J", [a, b], deadline=1e6)
        plan = Schedule({
            "a": TaskAssignment("a", "n0", 0.0, 8.0),
            "b": TaskAssignment("b", "n1", 0.5, 1.5),  # optimistic
        })
        engine = SimEngine(
            cluster, [job], FixedScheduler(plan),
            sim_config=SimConfig(epoch=0.5, scheduling_period=10.0),
            dependency_aware_dispatch=False,
            record_trace=True,
        )
        engine.run()
        kinds = {s.kind for s in engine.trace.segments}
        assert "stall" in kinds and "run" in kinds


class TestGanttChart:
    def _log(self):
        log = TraceLog()
        log.open_segment("a", "n1", 0.0, "run")
        log.close_segment("a", 10.0)
        log.open_segment("b", "n2", 5.0, "stall")
        log.close_segment("b", 15.0)
        return log

    def test_renders_lanes(self):
        out = gantt_chart(self._log(), ["n1", "n2"])
        assert "n1 |" in out and "n2 |" in out
        assert "#" in out  # the stall mark

    def test_empty(self):
        assert gantt_chart(TraceLog(), ["n1"]) == "(empty trace)"

    def test_width_validation(self):
        with pytest.raises(ValueError):
            gantt_chart(self._log(), ["n1"], width=5)

    def test_time_window(self):
        out = gantt_chart(self._log(), ["n1"], t_min=0.0, t_max=100.0)
        assert "100.0" in out
