"""Array-backed kernel core (``sim/arraycore.py``): allocator properties
and mirror freshness.

``tests/test_sched_core.py`` proves the *scores* coming out of the array
core are bit-identical to a stateless evaluation after every bus event.
This module covers the substrate underneath:

* **DenseIds** — hypothesis property: ids are unique among live rows,
  freed ids are reused LIFO, a fresh allocation extends the high-water
  mark, and an allocation can never alias a live id.
* **Mirror freshness** — after every slice of a seeded chaos run, every
  mirrored column equals the corresponding ``TaskRuntime`` field for
  every live task (the event-driven sync catalog covers every mutation
  path, not just the ones the score formula reads).
* **Retirement** — a completed job's rows return to the free list, and a
  streaming-admitted successor reuses them without aliasing.
* **Rebuild** — ``rebuild_and_assert`` (the restore-path guard) passes
  mid-run at arbitrary points.
"""

from __future__ import annotations

import math
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, NodeSpec, ResourceVector
from repro.config import DSPConfig, ResilienceConfig, SimConfig
from repro.core import HeuristicScheduler
from repro.core.preemption import DSPPreemption
from repro.dag import Job, Task
from repro.dag.task import TaskState
from repro.sim import SimEngine
from repro.sim.arraycore import _STATE_CODE, ArrayCore, DenseIds

from test_sched_core import _chaos_inputs, _sim_cfg


# ------------------------------------------------------------- allocator
class TestDenseIds:
    @given(st.lists(st.integers(min_value=0, max_value=2**31), min_size=1))
    @settings(deadline=None, max_examples=200)
    def test_alloc_free_never_alias(self, ops: list[int]):
        """Drive a pseudo-random alloc/free schedule derived from *ops*:
        every allocation must come off the free list LIFO (or extend the
        high-water mark) and must never collide with a live id."""
        ids = DenseIds()
        live: set[int] = set()
        free_stack: list[int] = []  # model of the LIFO free list
        for op in ops:
            if live and op % 3 == 0:
                victim = sorted(live)[op % len(live)]
                ids.free(victim)
                live.remove(victim)
                free_stack.append(victim)
            else:
                got = ids.alloc()
                assert got not in live, "allocator aliased a live id"
                if free_stack:
                    assert got == free_stack.pop(), "free-list reuse not LIFO"
                else:
                    assert got == ids.capacity - 1, "fresh id != high-water"
                live.add(got)
        assert ids.capacity >= len(live)
        assert ids.free_count == ids.capacity - len(live)
        assert ids.free_count == len(free_stack)

    def test_interleaved_reuse(self):
        ids = DenseIds()
        a, b, c = ids.alloc(), ids.alloc(), ids.alloc()
        assert (a, b, c) == (0, 1, 2)
        ids.free(b)
        ids.free(a)
        assert ids.alloc() == a  # LIFO: last freed, first reused
        assert ids.alloc() == b
        assert ids.alloc() == 3  # free list empty: extend
        assert ids.capacity == 4


# ------------------------------------------------------ mirror freshness
def _float_col_pairs(core: ArrayCore, task) -> list[tuple[float, object]]:
    """(mirror value, object value) for every float column of one row;
    object-side ``None`` is mirrored as NaN (``planned_start`` as +inf
    when unset, matching the dispatch gate's sentinel)."""
    row = core._row_of[task.task.task_id]
    return [
        (core._size[row], task.task.size_mi),
        (core._work[row], task.work_done_mi),
        (core._run_start[row], task.run_start),
        (core._cur_recovery[row], task.current_recovery),
        (core._recovery_due[row], task.recovery_due),
        (core._queued_since[row], task.queued_since),
        (core._total_wait[row], task.total_wait),
        (core._deadline[row], task.deadline),
        (
            core._planned[row],
            task.planned_start if task.planned_start is not None else math.inf,
        ),
        (core._stall_start[row], task.stall_start),
    ]


def _assert_mirror_fresh(core: ArrayCore, state) -> None:
    for tid, task in state.tasks.items():
        if task.state is TaskState.COMPLETED and tid not in core._row_of:
            continue  # retired with its job
        row = core._row_of[tid]
        assert core._id_of[row] == tid
        assert core._state[row] == _STATE_CODE[task.state]
        expected_pos = (
            core._node_pos[task.node_id] if task.node_id is not None else -1
        )
        assert core._node[row] == expected_pos
        assert core._unfinished[row] == task.unfinished_parents
        assert core._preempt_count[row] == task.preempt_count
        assert bool(core._banned[row]) == task.stall_banned
        for got, want in _float_col_pairs(core, task):
            if want is None:
                assert math.isnan(got), (tid, got)
            else:
                assert got == want, (tid, got, want)


class TestMirrorFreshness:
    def test_columns_match_objects_throughout_chaos_run(self):
        """Slice a seeded chaos run and diff every mirrored column against
        the runtime objects at each settled point; also re-run the restore
        guard (``rebuild_and_assert``) mid-flight."""
        cfg = DSPConfig()
        cluster, workload, deadlines, faults = _chaos_inputs(2, cfg)
        engine = SimEngine(
            cluster,
            [],
            HeuristicScheduler(cluster),
            preemption=DSPPreemption(cfg),
            dsp_config=cfg,
            sim_config=_sim_cfg(),
            faults=faults,
            resilience=ResilienceConfig(max_attempts=12),
            streaming=True,
        )
        for job in workload.jobs:
            engine.submit_job(
                job, {tid: deadlines[tid] for tid in job.tasks}
            )
        rt = engine.runtime
        core = rt.array
        assert isinstance(core, ArrayCore)
        slices = 0
        while engine.pump(50):
            _assert_mirror_fresh(core, rt.state)
            if slices % 4 == 0:
                core.rebuild_and_assert()
            slices += 1
        assert slices > 5, "run too short to be meaningful"
        engine.finalize()


# ----------------------------------------------------------- retirement
def _lane(n: int = 2) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def _chain_job(jid: str, n: int, arrival: float = 0.0) -> Job:
    tasks = [
        Task(
            task_id=f"{jid}.t{i}",
            job_id=jid,
            size_mi=2000.0,
            demand=ResourceVector(cpu=1.0, mem=0.5),
            parents=(f"{jid}.t{i - 1}",) if i else (),
        )
        for i in range(n)
    ]
    return Job.from_tasks(jid, tasks, deadline=1e6, arrival_time=arrival)


class TestRetirement:
    def test_completed_job_rows_freed_and_reused(self):
        """After job A completes, its rows sit on the free list; a
        streaming-admitted job B of the same size reuses exactly those
        rows (capacity does not grow) without aliasing live state."""
        cluster = _lane()
        engine = SimEngine(
            cluster,
            [],
            HeuristicScheduler(cluster),
            sim_config=_sim_cfg(),
            streaming=True,
        )
        core = engine.runtime.array
        assert isinstance(core, ArrayCore)
        engine.submit_job(_chain_job("A", 3))
        cap_a = core._ids.capacity
        while engine.pump(200):
            pass
        # Job A done: every row retired.
        assert core._row_of == {}
        assert core._ids.free_count == cap_a == 3

        job_b = _chain_job("B", 3, arrival=engine.runtime.now)
        engine.submit_job(job_b)
        assert set(core._row_of) == set(job_b.tasks)
        assert core._ids.capacity == cap_a  # rows recycled, no growth
        assert core._ids.free_count == 0
        while engine.pump(200):
            pass
        metrics = engine.finalize()
        assert metrics.jobs_completed == 2
        assert core._row_of == {}
        assert core._ids.free_count == cap_a
