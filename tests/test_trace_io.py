"""Tests for trace CSV persistence."""

import pytest

from repro.trace import (
    GoogleTraceGenerator,
    TraceTaskRecord,
    read_trace_csv,
    records_from_csv_string,
    records_to_csv_string,
    write_trace_csv,
)


@pytest.fixture
def records():
    return GoogleTraceGenerator(rng=11).trace([("a", 8), ("b", 5)])


class TestFileRoundTrip:
    def test_roundtrip_exact(self, records, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_trace_csv(records, path)
        assert n == len(records)
        back = read_trace_csv(path)
        assert back == records  # bit-exact floats via repr

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace_csv([], path)
        assert read_trace_csv(path) == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace_csv(tmp_path / "nope.csv")


class TestStringRoundTrip:
    def test_roundtrip(self, records):
        text = records_to_csv_string(records)
        assert records_from_csv_string(text) == records

    def test_header_present(self, records):
        text = records_to_csv_string(records)
        assert text.splitlines()[0] == "job_id,task_index,start_time,end_time,cpu,mem"

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            records_from_csv_string("a,b,c\n1,2,3\n")

    def test_wrong_column_count_rejected(self):
        text = "job_id,task_index,start_time,end_time,cpu,mem\nj,0,1\n"
        with pytest.raises(ValueError, match="columns"):
            records_from_csv_string(text)

    def test_empty_string(self):
        assert records_from_csv_string("") == []

    def test_values_parse_back_to_types(self):
        r = TraceTaskRecord("j", 3, 1.5, 2.75, 0.125, 0.5)
        back = records_from_csv_string(records_to_csv_string([r]))[0]
        assert isinstance(back.task_index, int)
        assert back.start_time == 1.5 and back.cpu == 0.125
