"""Tests for trace CSV persistence and the streaming task_events reader's
skip accounting."""

import pytest

from repro.trace import (
    GoogleTraceGenerator,
    TraceTaskRecord,
    read_trace_csv,
    records_from_csv_string,
    records_to_csv_string,
    write_trace_csv,
)
from repro.trace.google_reader import (
    TraceSkipStats,
    iter_task_events,
    read_task_events,
)


@pytest.fixture
def records():
    return GoogleTraceGenerator(rng=11).trace([("a", 8), ("b", 5)])


class TestFileRoundTrip:
    def test_roundtrip_exact(self, records, tmp_path):
        path = tmp_path / "trace.csv"
        n = write_trace_csv(records, path)
        assert n == len(records)
        back = read_trace_csv(path)
        assert back == records  # bit-exact floats via repr

    def test_empty_roundtrip(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_trace_csv([], path)
        assert read_trace_csv(path) == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_trace_csv(tmp_path / "nope.csv")


class TestStringRoundTrip:
    def test_roundtrip(self, records):
        text = records_to_csv_string(records)
        assert records_from_csv_string(text) == records

    def test_header_present(self, records):
        text = records_to_csv_string(records)
        assert text.splitlines()[0] == "job_id,task_index,start_time,end_time,cpu,mem"

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError, match="header"):
            records_from_csv_string("a,b,c\n1,2,3\n")

    def test_wrong_column_count_rejected(self):
        text = "job_id,task_index,start_time,end_time,cpu,mem\nj,0,1\n"
        with pytest.raises(ValueError, match="columns"):
            records_from_csv_string(text)

    def test_empty_string(self):
        assert records_from_csv_string("") == []

    def test_values_parse_back_to_types(self):
        r = TraceTaskRecord("j", 3, 1.5, 2.75, 0.125, 0.5)
        back = records_from_csv_string(records_to_csv_string([r]))[0]
        assert isinstance(back.task_index, int)
        assert back.start_time == 1.5 and back.cpu == 0.125


def _sched(ts, job, idx, cpu="0.5", mem="0.25"):
    # task_events v2 layout: 0 timestamp, 2 job, 3 index, 5 event, 9-10 cpu/mem
    return [str(ts), "", job, str(idx), "", "1", "", "", "", cpu, mem]


def _finish(ts, job, idx):
    return [str(ts), "", job, str(idx), "", "4", "", "", "", "", ""]


class TestTraceSkipStats:
    """Every dropped task_events row must land in a reason bucket — a
    replay reports exactly how much of the trace it quarantined and why."""

    def test_truncated_rows_bucketed(self):
        stats = TraceSkipStats()
        rows = [["1000000", "j"], [], _sched(1_000_000, "j1", 0),
                _finish(2_000_000, "j1", 0)]
        records = read_task_events(rows, stats)
        assert len(records) == 1
        assert stats.short_row == 2
        assert stats.reads == 4 and stats.records == 1

    def test_bad_timestamp_finish_before_schedule(self):
        stats = TraceSkipStats()
        rows = [_sched(5_000_000, "j1", 0), _finish(5_000_000, "j1", 0)]
        assert read_task_events(rows, stats) == []
        assert stats.bad_timestamp == 1

    def test_missing_finish_counted_after_iteration(self):
        stats = TraceSkipStats()
        rows = [_sched(1_000_000, "j1", 0), _sched(2_000_000, "j1", 1),
                _finish(3_000_000, "j1", 1)]
        records = read_task_events(rows, stats)
        assert [r.task_index for r in records] == [1]
        # The open SCHEDULE only counts once the input ends.
        assert stats.unpaired_schedule == 1

    def test_finish_without_schedule(self):
        stats = TraceSkipStats()
        assert read_task_events([_finish(1_000_000, "j1", 0)], stats) == []
        assert stats.unpaired_finish == 1

    def test_unparsable_fields_and_empty_job(self):
        stats = TraceSkipStats()
        rows = [
            _sched("not-a-number", "j1", 0),
            _sched(1_000_000, "", 0),
            _sched(2_000_000, "j1", 0, cpu="bogus"),
            _sched(3_000_000, "j1", 0, cpu="1.5"),  # outside (0, 1]
        ]
        assert read_task_events(rows, stats) == []
        assert stats.bad_field == 1
        assert stats.empty_job == 1
        assert stats.bad_resources == 2

    def test_duplicate_schedule_keeps_latest(self):
        stats = TraceSkipStats()
        rows = [
            _sched(1_000_000, "j1", 0, cpu="0.1"),
            _sched(2_000_000, "j1", 0, cpu="0.9"),
            _finish(3_000_000, "j1", 0),
        ]
        records = read_task_events(rows, stats)
        assert stats.duplicate_schedule == 1
        assert records[0].cpu == 0.9
        assert records[0].start_time == pytest.approx(2.0)

    def test_streaming_yields_on_finish(self):
        """Records must yield the moment the FINISH row closes the pair —
        memory is bounded by open tasks, not trace length."""
        rows = iter(
            [_sched(1_000_000, "j1", 0), _finish(2_000_000, "j1", 0),
             _sched(3_000_000, "j1", 1), _finish(4_000_000, "j1", 1)]
        )
        gen = iter_task_events(rows)
        first = next(gen)
        assert first.task_index == 0
        assert next(rows) == _sched(3_000_000, "j1", 1)  # nothing pre-read

    def test_total_and_as_dict_consistent(self):
        stats = TraceSkipStats()
        rows = [["x"], _sched(1_000_000, "j1", 0),
                _finish(500_000, "j1", 0), _finish(2_000_000, "j2", 0)]
        read_task_events(rows, stats)
        as_dict = stats.as_dict()
        assert as_dict["total_skipped"] == stats.total_skipped() == 3
        assert as_dict["reads"] == 4 and as_dict["records"] == 0

    def test_merge_accumulates_across_resumes(self):
        a = TraceSkipStats(short_row=2, reads=10, records=3)
        b = TraceSkipStats(short_row=1, bad_timestamp=4, reads=5)
        a.merge(b)
        assert a.short_row == 3 and a.bad_timestamp == 4
        assert a.reads == 15 and a.records == 3
