"""Tests for the Task model and TaskState."""

import pytest

from repro.dag import Task, TaskState
from repro.cluster import ResourceVector


class TestTaskValidation:
    def test_minimal_task(self):
        t = Task(task_id="a", job_id="j", size_mi=10.0)
        assert t.is_root

    def test_empty_task_id_rejected(self):
        with pytest.raises(ValueError, match="task_id"):
            Task(task_id="", job_id="j", size_mi=1.0)

    def test_empty_job_id_rejected(self):
        with pytest.raises(ValueError, match="job_id"):
            Task(task_id="a", job_id="", size_mi=1.0)

    @pytest.mark.parametrize("size", [0.0, -5.0])
    def test_nonpositive_size_rejected(self, size):
        with pytest.raises(ValueError, match="size_mi"):
            Task(task_id="a", job_id="j", size_mi=size)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="cannot depend on itself"):
            Task(task_id="a", job_id="j", size_mi=1.0, parents=("a",))

    def test_duplicate_parents_rejected(self):
        with pytest.raises(ValueError, match="duplicate parents"):
            Task(task_id="a", job_id="j", size_mi=1.0, parents=("b", "b"))

    def test_is_root_false_with_parents(self):
        t = Task(task_id="a", job_id="j", size_mi=1.0, parents=("b",))
        assert not t.is_root

    def test_frozen(self):
        t = Task(task_id="a", job_id="j", size_mi=1.0)
        with pytest.raises(Exception):
            t.size_mi = 2.0  # type: ignore[misc]


class TestExecutionTime:
    def test_eq2(self):
        # t = l / g(k): 1000 MI at 500 MIPS = 2 s.
        t = Task(task_id="a", job_id="j", size_mi=1000.0)
        assert t.execution_time(500.0) == pytest.approx(2.0)

    def test_faster_node_shorter_time(self):
        t = Task(task_id="a", job_id="j", size_mi=1000.0)
        assert t.execution_time(2000.0) < t.execution_time(1000.0)

    def test_zero_rate_rejected(self):
        t = Task(task_id="a", job_id="j", size_mi=1000.0)
        with pytest.raises(ValueError):
            t.execution_time(0.0)


class TestTaskState:
    def test_only_completed_is_terminal(self):
        assert TaskState.COMPLETED.is_terminal()
        for state in TaskState:
            if state is not TaskState.COMPLETED:
                assert not state.is_terminal()

    def test_all_states_present(self):
        names = {s.name for s in TaskState}
        assert names == {
            "PENDING", "RUNNABLE", "QUEUED", "RUNNING",
            "STALLED", "PREEMPTED", "COMPLETED",
        }
