"""Tests for the exact ILP scheduler (Eq. 3–11 via HiGHS)."""

import pytest

from repro.cluster import uniform_cluster
from repro.config import DSPConfig
from repro.core import ILPScheduler, ScheduleInfeasible, verify_schedule
from repro.dag import Job, Task, chain_dag, diamond_dag, fork_join_dag


def mk(tid: str, parents=(), size=1000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size, parents=tuple(parents))


@pytest.fixture
def two_nodes():
    # g(k) = 1000 MIPS each -> a 1000 MI task runs 1 s.
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


@pytest.fixture
def one_node():
    return uniform_cluster(1, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestExactOptima:
    def test_diamond_makespan_three(self, two_nodes):
        job = Job.from_tasks("J1", diamond_dag("J1", size_mi=1000.0), deadline=100.0)
        res = ILPScheduler(two_nodes).solve([job])
        assert res.makespan == pytest.approx(3.0, abs=1e-4)
        assert verify_schedule(res.schedule, [job], two_nodes) == []

    def test_chain_serializes(self, two_nodes):
        job = Job.from_tasks("J1", chain_dag("J1", 4, size_mi=1000.0), deadline=100.0)
        res = ILPScheduler(two_nodes).solve([job])
        # A chain cannot parallelize: makespan = 4 s regardless of nodes.
        assert res.makespan == pytest.approx(4.0, abs=1e-4)

    def test_independent_tasks_parallelize(self, two_nodes):
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=100.0)
        res = ILPScheduler(two_nodes).solve([job])
        assert res.makespan == pytest.approx(1.0, abs=1e-4)
        nodes = {a.node_id for a in res.schedule.assignments.values()}
        assert len(nodes) == 2  # placed on different nodes (Eq. 3 objective)

    def test_single_node_serializes_independent(self, one_node):
        job = Job.from_tasks("J", [mk("a"), mk("b"), mk("c")], deadline=100.0)
        res = ILPScheduler(one_node).solve([job])
        assert res.makespan == pytest.approx(3.0, abs=1e-4)
        assert verify_schedule(res.schedule, [job], one_node) == []

    def test_fork_join(self, two_nodes):
        job = Job.from_tasks("J1", fork_join_dag("J1", width=2, size_mi=1000.0), deadline=100.0)
        res = ILPScheduler(two_nodes).solve([job])
        # source(1) + parallel middle(1) + sink(1) = 3 s.
        assert res.makespan == pytest.approx(3.0, abs=1e-4)

    def test_two_jobs(self, two_nodes):
        j1 = Job.from_tasks("J", [mk("J.a", size=1000.0)], deadline=100.0)
        t = Task(task_id="J2.a", job_id="J2", size_mi=1000.0)
        j2 = Job(job_id="J2", tasks={"J2.a": t}, deadline=100.0)
        res = ILPScheduler(two_nodes).solve([j1, j2])
        assert res.makespan == pytest.approx(1.0, abs=1e-4)

    def test_empty(self, two_nodes):
        res = ILPScheduler(two_nodes).solve([])
        assert res.makespan == 0.0
        assert len(res.schedule) == 0


class TestConstraints:
    def test_release_times_respected(self, two_nodes):
        job = Job.from_tasks(
            "J", [mk("a")], deadline=200.0, arrival_time=50.0
        )
        res = ILPScheduler(two_nodes).solve([job])
        assert res.schedule.start_of("a") >= 50.0 - 1e-6

    def test_deadline_infeasible_raises(self, one_node):
        # Two 1 s tasks, deadline 1.5 s on one node: impossible.
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=1.5)
        with pytest.raises(ScheduleInfeasible):
            ILPScheduler(one_node).solve([job])

    def test_deadline_enforcement_toggle(self, one_node):
        job = Job.from_tasks("J", [mk("a"), mk("b")], deadline=1.5)
        res = ILPScheduler(one_node).solve([job], enforce_deadlines=False)
        assert res.makespan == pytest.approx(2.0, abs=1e-4)

    def test_preemption_overhead_in_objective(self, one_node):
        cfg = DSPConfig(recovery_time=0.5, sigma=0.5)
        job = Job.from_tasks("J", [mk("a")], deadline=100.0)
        res = ILPScheduler(one_node, cfg, preemption_estimates={"a": 2.0}).solve([job])
        # 1 s execution + 2 preemptions x (0.5 + 0.5) = 3 s busy time.
        assert res.makespan == pytest.approx(3.0, abs=1e-4)

    def test_negative_preemption_estimate_rejected(self, one_node):
        with pytest.raises(ValueError):
            ILPScheduler(one_node, preemption_estimates={"a": -1.0})


class TestRelaxation:
    def test_relaxed_feasible(self, two_nodes):
        job = Job.from_tasks("J1", diamond_dag("J1", size_mi=1000.0), deadline=100.0)
        res = ILPScheduler(two_nodes).solve([job], relax=True)
        assert res.relaxed
        assert verify_schedule(res.schedule, [job], two_nodes) == []

    def test_relaxed_bounded_by_list_schedule(self, two_nodes):
        job = Job.from_tasks("J1", fork_join_dag("J1", width=4, size_mi=1000.0), deadline=100.0)
        exact = ILPScheduler(two_nodes).solve([job])
        relaxed = ILPScheduler(two_nodes).solve([job], relax=True)
        # Rounded relaxation is feasible, so >= exact; and it should not be
        # pathologically bad (within 3x here).
        assert relaxed.makespan >= exact.makespan - 1e-6
        assert relaxed.makespan <= 3.0 * exact.makespan + 1e-6
