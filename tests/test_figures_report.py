"""Tests for the figure runners, report rendering and ablations."""

import pytest

from repro.experiments import (
    DEFAULT_SWEEPS,
    FigureSeries,
    ablation_report,
    check_order,
    cluster_profile,
    default_config,
    default_sim_config,
    fig5_makespan,
    fig6_fig7_preemption,
    fig8_scalability,
    figure_markdown,
    figure_report,
    series_table,
    sweep_parameter,
)


class TestClusterProfile:
    def test_cluster_profile_counts(self):
        assert len(cluster_profile("cluster", node_scale=5.0)) == 10
        assert len(cluster_profile("ec2", node_scale=5.0)) == 6

    def test_full_scale(self):
        assert len(cluster_profile("cluster", node_scale=1.0)) == 50
        assert len(cluster_profile("ec2", node_scale=1.0)) == 30

    def test_unknown_profile(self):
        with pytest.raises(ValueError):
            cluster_profile("mars")

    def test_default_configs(self):
        assert default_config().tau == 120.0
        assert default_sim_config().scheduling_period == 300.0


@pytest.fixture(scope="module")
def tiny_fig5():
    return fig5_makespan("cluster", job_counts=(6,), scale=60.0, seed=3)


@pytest.fixture(scope="module")
def tiny_fig6():
    return fig6_fig7_preemption("cluster", job_counts=(6,), scale=60.0, seed=3)


class TestFigureRunners:
    def test_fig5_shape(self, tiny_fig5):
        assert tiny_fig5.figure == "fig5a"
        assert tiny_fig5.x == (6,)
        assert set(tiny_fig5.methods()) == {"DSP", "Aalo", "TetrisW/SimDep", "TetrisW/oDep"}
        for series in tiny_fig5.metric("makespan").values():
            assert len(series) == 1 and series[0] > 0

    def test_fig5_ec2_label(self):
        fig = fig5_makespan("ec2", job_counts=(3,), scale=100.0, seed=3)
        assert fig.figure == "fig5b"
        assert fig.meta["nodes"] == 6

    def test_fig6_shape(self, tiny_fig6):
        assert tiny_fig6.figure == "fig6"
        assert set(tiny_fig6.methods()) == {"DSP", "DSPW/oPP", "Natjam", "Amoeba", "SRPT"}
        assert all(v == 0 for v in tiny_fig6.metric("num_disorders")["DSP"])

    def test_fig8_two_profiles(self):
        fig = fig8_scalability(job_counts=(4,), scale=120.0, seed=3)
        assert set(fig.methods()) == {"Real cluster", "Amazon EC2"}

    def test_metric_accessor(self, tiny_fig5):
        rows = tiny_fig5.metric("makespan")
        assert set(rows) == set(tiny_fig5.methods())


class TestReportRendering:
    def test_series_table_alignment(self):
        out = series_table("jobs", [10, 20], {"DSP": [1.0, 2.0], "SRPT": [3.0, 4.0]},
                           title="Makespan")
        lines = out.splitlines()
        assert lines[0] == "Makespan"
        assert "jobs" in lines[1] and "10" in lines[1]
        assert any("DSP" in l for l in lines)

    def test_figure_report_contains_all_methods(self, tiny_fig5):
        text = figure_report(tiny_fig5, ("makespan",))
        for name in tiny_fig5.methods():
            assert name in text

    def test_figure_markdown_is_table(self, tiny_fig5):
        md = figure_markdown(tiny_fig5, ("makespan",))
        assert "| method |" in md
        assert "| DSP |" in md

    def test_number_formats(self):
        out = series_table("x", [1], {"m": [0.00012]})
        assert "0.00012" in out
        out = series_table("x", [1], {"m": [123456.0]})
        assert "123,456" in out


class TestCheckOrder:
    def test_respected(self):
        assert check_order({"a": 1.0, "b": 2.0, "c": 3.0}, ["a", "b", "c"]) == []

    def test_violation_reported(self):
        problems = check_order({"a": 5.0, "b": 2.0}, ["a", "b"])
        assert len(problems) == 1 and "a" in problems[0]

    def test_tolerance_allows_ties(self):
        values = {"a": 1.02, "b": 1.0}
        assert check_order(values, ["a", "b"], tolerance=0.05) == []
        assert check_order(values, ["a", "b"]) != []


class TestAblations:
    def test_sweep_runs(self):
        results = sweep_parameter("rho", (1.5, 3.0), num_jobs=4, scale=80.0, seed=3)
        assert set(results) == {1.5, 3.0}
        for m in results.values():
            assert m.tasks_completed > 0

    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            sweep_parameter("nope", (1.0,))

    def test_default_sweeps_cover_paper_params(self):
        assert set(DEFAULT_SWEEPS) == {"gamma", "rho", "delta", "tau"}

    def test_report_renders(self):
        results = sweep_parameter("gamma", (0.3,), num_jobs=3, scale=100.0, seed=3)
        text = ablation_report("gamma", results)
        assert "gamma" in text and "0.3" in text
