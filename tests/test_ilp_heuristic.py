"""Tests for the heuristic (list-scheduling) relaxation and lane model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import uniform_cluster
from repro.config import DSPConfig
from repro.core import HeuristicScheduler, node_lane_counts, verify_schedule
from repro.core.lanes import LaneTimelines, demand_sized_lanes
from repro.dag import Job, Task, chain_dag, diamond_dag, layered_random_dag


def mk(tid: str, parents=(), size=1000.0, cpu=1.0) -> Task:
    from repro.cluster import ResourceVector
    return Task(
        task_id=tid, job_id="J", size_mi=size,
        demand=ResourceVector(cpu=cpu, mem=0.5, disk=0.02, bandwidth=0.02),
        parents=tuple(parents),
    )


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestUpwardRank:
    def test_chain_ranks_descend(self, cluster):
        job = Job.from_tasks("J1", chain_dag("J1", 3, size_mi=1000.0), deadline=100.0)
        ranks = HeuristicScheduler(cluster).upward_rank([job])
        ids = sorted(ranks, key=ranks.get, reverse=True)
        assert ids == ["J1.T0000", "J1.T0001", "J1.T0002"]

    def test_rank_is_exec_plus_longest_chain(self, cluster):
        job = Job.from_tasks("J", [mk("a"), mk("b", ["a"])], deadline=100.0)
        ranks = HeuristicScheduler(cluster).upward_rank([job])
        assert ranks["b"] == pytest.approx(1.0)   # 1000 MI at 1000 MIPS
        assert ranks["a"] == pytest.approx(2.0)

    def test_root_of_big_subtree_outranks(self, cluster):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        ranks = HeuristicScheduler(cluster).upward_rank([job])
        assert ranks["J1.T0000"] > ranks["J1.T0001"] > ranks["J1.T0003"]


class TestScheduleValidity:
    def test_precedence_respected(self, cluster):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=1000.0)
        plan = HeuristicScheduler(cluster).schedule([job])
        violations = verify_schedule(
            plan, [job], cluster, unit_capacity=False,
            node_lanes={n.node_id: 64 for n in cluster}, check_deadlines=False,
        )
        assert violations == []

    def test_all_tasks_assigned(self, cluster):
        job = Job.from_tasks(
            "J", layered_random_dag("J", 60, rng=3), deadline=1e9
        )
        plan = HeuristicScheduler(cluster).schedule([job])
        assert set(plan.assignments) == set(job.tasks)

    def test_release_times(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1000.0, arrival_time=77.0)
        plan = HeuristicScheduler(cluster).schedule([job])
        assert plan.start_of("a") >= 77.0

    def test_deterministic(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 40, rng=5), deadline=1e9)
        a = HeuristicScheduler(cluster).schedule([job])
        b = HeuristicScheduler(cluster).schedule([job])
        assert {t: (x.node_id, x.start) for t, x in a.assignments.items()} == {
            t: (x.node_id, x.start) for t, x in b.assignments.items()
        }

    def test_empty_batch(self, cluster):
        assert len(HeuristicScheduler(cluster).schedule([])) == 0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500),
           n=st.integers(min_value=1, max_value=50))
    def test_property_precedence_always_holds(self, seed, n):
        cluster = uniform_cluster(3, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
        job = Job.from_tasks("J", layered_random_dag("J", n, rng=seed), deadline=1e12)
        plan = HeuristicScheduler(cluster).schedule([job])
        for tid, task in job.tasks.items():
            for p in task.parents:
                assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9


class TestBatchPersistence:
    def test_second_batch_sees_backlog(self, cluster):
        sched = HeuristicScheduler(cluster)
        j1 = Job.from_tasks("J", [mk(f"t{i}", size=8000.0) for i in range(16)], deadline=1e9)
        plan1 = sched.schedule([j1])
        t2 = Task(task_id="K.a", job_id="K", size_mi=1000.0)
        j2 = Job(job_id="K", tasks={"K.a": t2}, deadline=1e9)
        plan2 = sched.schedule([j2])
        # The second batch cannot start at 0: lanes are busy with batch 1.
        assert plan2.start_of("K.a") > 0.0

    def test_reset_clears_backlog(self, cluster):
        sched = HeuristicScheduler(cluster)
        j1 = Job.from_tasks("J", [mk(f"t{i}", size=8000.0) for i in range(16)], deadline=1e9)
        sched.schedule([j1])
        sched.reset()
        t2 = Task(task_id="K.a", job_id="K", size_mi=1000.0)
        j2 = Job(job_id="K", tasks={"K.a": t2}, deadline=1e9)
        assert sched.schedule([j2]).start_of("K.a") == pytest.approx(0.0)

    def test_explicit_lanes_respected(self, cluster):
        sched = HeuristicScheduler(cluster, lanes={"node-00": 1, "node-01": 1})
        job = Job.from_tasks("J", [mk("a"), mk("b"), mk("c")], deadline=1e9)
        plan = sched.schedule([job])
        # 3 unit tasks over 2 single-lane nodes: one node must run two.
        assert plan.makespan == pytest.approx(2.0)

    def test_invalid_lane_count_rejected(self, cluster):
        with pytest.raises(ValueError):
            HeuristicScheduler(cluster, lanes={"node-00": 0, "node-01": 1})


class TestLaneModel:
    def test_node_lane_counts(self, cluster):
        assert node_lane_counts(cluster) == {"node-00": 4, "node-01": 4}

    def test_demand_sized_lanes(self, cluster):
        # Mean demand cpu=2 on 4-cpu nodes -> 2 lanes.
        job = Job.from_tasks("J", [mk("a", cpu=2.0), mk("b", cpu=2.0)], deadline=1e9)
        lanes = demand_sized_lanes(cluster, [job])
        assert lanes["node-00"] == 2

    def test_demand_sized_lanes_empty(self, cluster):
        lanes = demand_sized_lanes(cluster, [])
        assert lanes["node-00"] == 4  # falls back to cpu count

    def test_lanes_needed_proportional(self, cluster):
        tl = LaneTimelines(cluster, {"node-00": 4, "node-01": 4})
        # cpu 2 of 4 = 50% share -> 2 of 4 lanes.
        assert tl.lanes_needed("node-00", (2.0, 0.1, 0.0, 0.0)) == 2
        # Tiny demand -> 1 lane.
        assert tl.lanes_needed("node-00", (0.1, 0.1, 0.0, 0.0)) == 1
        # Oversized demand clamps to all lanes.
        assert tl.lanes_needed("node-00", (100.0, 0.1, 0.0, 0.0)) == 4

    def test_earliest_start_and_commit(self, cluster):
        tl = LaneTimelines(cluster, {"node-00": 2, "node-01": 2})
        assert tl.earliest_start("node-00", 1, 0.0) == 0.0
        tl.commit("node-00", 2, 5.0)
        assert tl.earliest_start("node-00", 1, 0.0) == 5.0

    def test_place_eft_prefers_free_node(self, cluster):
        tl = LaneTimelines(cluster, {"node-00": 1, "node-01": 1})
        tl.commit("node-00", 1, 10.0)
        nid, start, end = tl.place_eft((1.0, 1.0, 0, 0), 0.0, lambda n: 1.0)
        assert nid == "node-01" and start == 0.0 and end == 1.0

    def test_place_earliest_start_ties_by_id(self, cluster):
        tl = LaneTimelines(cluster, {"node-00": 1, "node-01": 1})
        nid, start, _ = tl.place_earliest_start((1.0, 1.0, 0, 0), 0.0, lambda n: 1.0)
        assert nid == "node-00" and start == 0.0
