"""Tests for NodeSpec, Cluster and the testbed machine profiles."""

import pytest

from repro.cluster import (
    EC2_NODE_COUNT,
    PALMETTO_NODE_COUNT,
    Cluster,
    NodeSpec,
    ec2_cluster,
    ec2_node,
    palmetto_cluster,
    palmetto_node,
    uniform_cluster,
)


class TestNodeSpec:
    def test_processing_rate_eq1(self):
        # g(k) = (θ1·cpu + θ2·mem) · mips_per_unit
        n = NodeSpec(node_id="n", cpu_size=4.0, mem_size=8.0, mips_per_unit=100.0)
        assert n.processing_rate(0.5, 0.5) == pytest.approx(600.0)

    def test_theta_weights_shift_rate(self):
        n = NodeSpec(node_id="n", cpu_size=4.0, mem_size=8.0, mips_per_unit=100.0)
        assert n.processing_rate(1.0, 0.0) == pytest.approx(400.0)
        assert n.processing_rate(0.0, 1.0) == pytest.approx(800.0)

    def test_zero_weights_rejected(self):
        n = NodeSpec(node_id="n", cpu_size=4.0, mem_size=8.0)
        with pytest.raises(ValueError):
            n.processing_rate(0.0, 0.0)

    def test_capacity_vector(self):
        n = NodeSpec(node_id="n", cpu_size=4.0, mem_size=8.0,
                     disk_capacity=100.0, bandwidth_capacity=10.0)
        assert n.capacity.as_tuple() == (4.0, 8.0, 100.0, 10.0)

    @pytest.mark.parametrize("field", ["cpu_size", "mem_size", "disk_capacity",
                                        "bandwidth_capacity", "mips_per_unit"])
    def test_positive_fields(self, field):
        kwargs = dict(node_id="n", cpu_size=1.0, mem_size=1.0)
        kwargs[field] = 0.0
        with pytest.raises(ValueError):
            NodeSpec(**kwargs)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(node_id="", cpu_size=1.0, mem_size=1.0)


class TestCluster:
    def test_lookup_and_index(self):
        cl = uniform_cluster(3)
        assert cl.node("node-01").node_id == "node-01"
        assert cl.index_of("node-02") == 2
        assert "node-00" in cl
        assert "nope" not in cl

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_duplicate_ids_rejected(self):
        n = NodeSpec(node_id="x", cpu_size=1.0, mem_size=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            Cluster([n, n])

    def test_total_capacity(self):
        cl = uniform_cluster(2, cpu_size=4.0, mem_size=8.0)
        assert cl.total_capacity().cpu == 8.0
        assert cl.total_capacity().mem == 16.0

    def test_total_rate_additivity(self):
        cl = uniform_cluster(5, cpu_size=4.0, mem_size=4.0, mips_per_unit=100.0)
        single = cl.nodes[0].processing_rate()
        assert cl.total_rate() == pytest.approx(5 * single)

    def test_fastest_node(self):
        nodes = [
            NodeSpec(node_id="slow", cpu_size=1.0, mem_size=1.0),
            NodeSpec(node_id="fast", cpu_size=8.0, mem_size=8.0),
        ]
        assert Cluster(nodes).fastest_node().node_id == "fast"

    def test_iteration_order_stable(self):
        cl = uniform_cluster(4)
        assert [n.node_id for n in cl] == [f"node-0{i}" for i in range(4)]


class TestMachineProfiles:
    def test_palmetto_count_default(self):
        assert len(palmetto_cluster()) == PALMETTO_NODE_COUNT == 50

    def test_ec2_count_default(self):
        assert len(ec2_cluster()) == EC2_NODE_COUNT == 30

    def test_paper_disk_and_bandwidth(self):
        # §V: 1 GB/s bandwidth, 720 GB disk on every server.
        for node in (palmetto_node("p"), ec2_node("e")):
            assert node.disk_capacity == 720_000.0
            assert node.bandwidth_capacity == 1000.0

    def test_ec2_rate_matches_2660_mips(self):
        # HP ProLiant ML110 G5: 2660 MIPS.
        assert ec2_node("e").processing_rate() == pytest.approx(2660.0)

    def test_palmetto_faster_than_ec2(self):
        assert palmetto_node("p").processing_rate() > ec2_node("e").processing_rate()

    def test_palmetto_memory_16gb(self):
        assert palmetto_node("p").mem_size == 16.0

    def test_ec2_memory_4gb(self):
        assert ec2_node("e").mem_size == 4.0

    def test_custom_counts(self):
        assert len(palmetto_cluster(7)) == 7
        assert len(ec2_cluster(3)) == 3
