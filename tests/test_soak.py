"""Tests for the soak harness (``scripts/soak.py``): the case grid,
end-to-end clean cases, the ddmin plan minimizer (a deliberately broken
policy must shrink to a tiny repro), and the JSON artifact shape."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import soak  # noqa: E402
from repro.cluster import uniform_cluster  # noqa: E402
from repro.config import SimConfig  # noqa: E402
from repro.core import HeuristicScheduler  # noqa: E402
from repro.sim import (  # noqa: E402
    FaultEvent,
    FaultKind,
    InvariantViolation,
    SimEngine,
    chaos_plan,
    normalize_plan,
    validate_fault_plan,
)
from tests.test_invariants import C2Violator, chain_job, one_lane  # noqa: E402


class TestCaseGrid:
    def test_42_cases_cover_every_combination(self):
        combos = {
            (c.scenario, c.policy, c.resilient)
            for c in (soak.build_case(i, 0) for i in range(42))
        }
        assert len(combos) == (
            len(soak.SCENARIO_NAMES) * len(soak.POLICY_NAMES) * 2
        )

    def test_cases_are_seed_deterministic(self):
        case = soak.build_case(3, 7)
        w1, cl1, p1 = soak.case_inputs(case)
        w2, cl2, p2 = soak.case_inputs(case)
        assert p1 == p2
        assert [j.job_id for j in w1.jobs] == [j.job_id for j in w2.jobs]

    @pytest.mark.parametrize("index", [0, 3, 5])
    def test_clean_cases_pass(self, index):
        case = soak.build_case(index, 0)
        workload, cluster, plan = soak.case_inputs(case)
        assert validate_fault_plan(plan, cluster) == []
        outcome = soak.execute(case, workload, cluster, plan)
        assert outcome.status == "ok", outcome


class TestMinimizer:
    def test_minimize_plain_list(self):
        # Failure reproduces iff the candidate still contains 7; ddmin
        # must strip everything else.
        plan = list(range(20))
        assert soak.minimize_plan(plan, lambda c: 7 in c) == [7]

    def test_non_reproducing_failure_returned_unchanged(self):
        plan = list(range(5))
        assert soak.minimize_plan(plan, lambda c: False) == plan

    def test_policy_bug_minimizes_to_tiny_repro(self):
        # A C2-violating policy fails regardless of the fault plan, so
        # the 30+-event chaos plan must collapse to <= 5 events (here: 0).
        cluster = one_lane(2)
        job = chain_job()
        cfg = soak.SCENARIOS["mixed"]
        plan = chaos_plan(cluster, 20_000.0, cfg, rng=4)
        assert len(plan) > 5

        def run_with(candidate) -> bool:
            eng = SimEngine(
                cluster, [job], HeuristicScheduler(cluster),
                preemption=C2Violator(),
                sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                                     invariants="strict"),
                faults=normalize_plan(candidate, cluster, keep_alive=False),
                dependency_aware_dispatch=False,
            )
            try:
                eng.run()
            except InvariantViolation as exc:
                return exc.name == "c2-dependency-preemption"
            return False

        minimal = soak.minimize_plan(plan, run_with)
        assert len(minimal) <= 5

    def test_fault_dependent_failure_keeps_culprit(self):
        # Synthetic oracle standing in for a fault-triggered bug: the
        # failure needs the n0 FAILURE/RECOVERY pair.  ddmin must keep
        # both and drop the noise.
        plan = [
            FaultEvent(1.0, "n1", FaultKind.SLOWDOWN, factor=0.5),
            FaultEvent(2.0, "n0", FaultKind.FAILURE),
            FaultEvent(3.0, "n1", FaultKind.RESTORE),
            FaultEvent(4.0, "n1", FaultKind.TASK_FAIL),
            FaultEvent(5.0, "n0", FaultKind.RECOVERY),
            FaultEvent(6.0, "n1", FaultKind.TASK_FAIL),
        ]

        def reproduces(candidate) -> bool:
            kinds = [(ev.node_id, ev.kind) for ev in candidate]
            return (("n0", FaultKind.FAILURE) in kinds
                    and ("n0", FaultKind.RECOVERY) in kinds)

        minimal = soak.minimize_plan(plan, reproduces)
        assert len(minimal) == 2
        assert {ev.kind for ev in minimal} == {FaultKind.FAILURE,
                                               FaultKind.RECOVERY}


class TestArtifact:
    def test_artifact_shape(self, tmp_path):
        case = soak.build_case(5, 0)
        failure = soak.Outcome("fail", "InvariantViolation",
                               "c2-dependency-preemption", "boom")
        cluster = uniform_cluster(case.num_nodes)
        plan = chaos_plan(cluster, 5000.0, soak.SCENARIOS["partitions"], rng=1)
        path = soak.write_artifact(tmp_path, case, failure, plan)
        artifact = json.loads(path.read_text())
        assert artifact["case"]["index"] == 5
        assert artifact["case"]["scenario"] == case.scenario
        assert artifact["error"]["type"] == "InvariantViolation"
        assert artifact["error"]["invariant"] == "c2-dependency-preemption"
        assert len(artifact["minimized_plan"]) == len(plan)
        # The serialized plan round-trips through the fault-plan JSON
        # schema used by plan_from_json.
        from repro.sim import plan_from_json
        assert plan_from_json(artifact["minimized_plan"]) == plan


class TestCrashRecoveryMode:
    def test_crash_case_parity(self, tmp_path):
        """One chaos case through the full kill-and-resume pipeline:
        reference run, injected crash, snapshot+journal recovery, and
        the byte-for-byte golden comparison."""
        case = soak.build_case(1, 0)  # correlated x fcfs, resilience off
        workload, cluster, plan = soak.case_inputs(case)
        outcome = soak.run_one_crash_case(
            case, workload, cluster, plan, tmp_path
        )
        assert outcome.status == "ok", outcome

    def test_mid_snapshot_write_case_parity(self, tmp_path):
        """Index % 5 == 0 cases crash via an injected I/O fault mid-
        snapshot-write, so recovery starts from before the torn write."""
        case = soak.build_case(0, 0)
        workload, cluster, plan = soak.case_inputs(case)
        assert case.index % 5 == 0
        outcome = soak.run_one_crash_case(
            case, workload, cluster, plan, tmp_path
        )
        assert outcome.status == "ok", outcome

    def test_cli_flag_wires_crash_mode(self, tmp_path, capsys, monkeypatch):
        calls = {}

        def fake(runs, seed, out, jobs=1):
            calls["args"] = (runs, seed, out, jobs)
            return 0

        monkeypatch.setattr(soak, "run_crash_soak", fake)
        assert soak.main(["--crash-recovery", "--runs", "3", "--seed", "9"]) == 0
        assert calls["args"][0] == 3 and calls["args"][1] == 9
        assert calls["args"][3] == 1  # --jobs defaults to serial

    def test_cli_jobs_flag_fans_out(self, tmp_path, capsys, monkeypatch):
        calls = {}

        def fake(runs, seed, out, jobs=1):
            calls["args"] = (runs, seed, out, jobs)
            return 0

        monkeypatch.setattr(soak, "run_soak", fake)
        assert soak.main(["--runs", "4", "--jobs", "2"]) == 0
        assert calls["args"][0] == 4 and calls["args"][3] == 2
