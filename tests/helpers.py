"""Factory helpers shared across test modules."""

from __future__ import annotations

from repro.cluster import ResourceVector
from repro.dag import Task
from repro.sim.policy import NodeView, TaskView


def make_task(
    task_id: str = "J1.T0",
    job_id: str = "J1",
    size_mi: float = 1000.0,
    cpu: float = 1.0,
    mem: float = 0.5,
    parents: tuple[str, ...] = (),
) -> Task:
    """Terse Task factory for tests."""
    return Task(
        task_id=task_id,
        job_id=job_id,
        size_mi=size_mi,
        demand=ResourceVector(cpu=cpu, mem=mem, disk=0.02, bandwidth=0.02),
        parents=parents,
    )


def make_view(
    task_id: str,
    *,
    job_id: str = "J",
    remaining: float = 10.0,
    waiting: float = 0.0,
    stint_waiting: float = 0.0,
    overdue_waiting: float = 0.0,
    allowable: float = 100.0,
    runnable: bool = True,
    running: bool = False,
    preemptable: bool = True,
    footprint: float = 1.0,
    weight: float = 0.0,
    deadline: float = 1000.0,
    depends_on: frozenset[str] = frozenset(),
) -> TaskView:
    """TaskView factory with sane defaults for policy unit tests."""
    return TaskView(
        task_id=task_id,
        job_id=job_id,
        remaining_time=remaining,
        waiting_time=waiting,
        stint_waiting_time=stint_waiting,
        overdue_waiting_time=overdue_waiting,
        allowable_wait=allowable,
        is_runnable=runnable,
        is_running=running,
        is_preemptable=preemptable,
        resource_footprint=footprint,
        job_weight=weight,
        job_deadline=deadline,
        depends_on_running=depends_on,
    )


def make_node_view(
    running: list[TaskView],
    waiting: list[TaskView],
    *,
    node_id: str = "node-00",
    now: float = 100.0,
    epoch: float = 5.0,
) -> NodeView:
    """NodeView factory for policy unit tests."""
    return NodeView(
        node_id=node_id, now=now, epoch=epoch,
        running=tuple(running), waiting=tuple(waiting),
    )
