"""Bounded-memory streaming replay (``sim/frontier.py``): retirement,
workload sources, the admission frontier, the memory watchdog and
mid-stream crash/resume.

The determinism contract under test: with the watchdog off, a
frontier-driven replay is a pure function of (source, configs) — so a
run killed mid-stream and resumed from snapshot + journal must rewrite
the journal suffix byte-identically and finish with identical metrics.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ResourceVector, uniform_cluster
from repro.config import FrontierConfig, SimConfig, SnapshotConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.dag.codec import job_from_dict, job_to_dict
from repro.experiments import workload_spec_for_cluster
from repro.sim import (
    AdmissionPaused,
    AdmissionResumed,
    JobRetired,
    JobShed,
    MemoryWatchdog,
    SimEngine,
    SimulationError,
    StreamingFrontier,
    SyntheticSource,
    TraceSource,
    latest_valid_snapshot,
)
from repro.sim.arraycore import DenseIds
from repro.sim.frontier import RetirementManager
from repro.trace.workload import build_workload


def _cluster(n: int = 3):
    return uniform_cluster(n, cpu_size=4.0, mem_size=8.0, mips_per_unit=500.0)


def _sim_cfg(**overrides) -> SimConfig:
    return SimConfig(epoch=2.0, scheduling_period=20.0, **overrides)


def _spec(num_jobs: int, cluster=None, scale: float = 60.0):
    return workload_spec_for_cluster(num_jobs, cluster or _cluster(), scale=scale)


def _streaming_engine(cluster, sim: SimConfig | None = None, **kwargs) -> SimEngine:
    return SimEngine(
        cluster,
        [],
        HeuristicScheduler(cluster),
        sim_config=sim or _sim_cfg(retire_completed=True),
        streaming=True,
        **kwargs,
    )


class _ListSource:
    """Minimal WorkloadSource over a fixed job list (for frontier tests)."""

    def __init__(self, jobs):
        self._jobs = list(jobs)
        self._i = 0

    @property
    def exhausted(self):
        return self._i >= len(self._jobs)

    def next_job(self):
        if self.exhausted:
            return None
        job = self._jobs[self._i]
        self._i += 1
        return job

    def cursor(self):
        return {"kind": "list", "i": self._i}

    def restore(self, cursor):
        self._i = int(cursor["i"])

    def describe(self):
        return f"list[{self._i}/{len(self._jobs)}]"


def _job(jid: str, n: int, arrival: float = 0.0, task_cpu: float = 1.0) -> Job:
    tasks = [
        Task(
            task_id=f"{jid}.t{i}",
            job_id=jid,
            size_mi=1500.0,
            demand=ResourceVector(cpu=task_cpu, mem=0.5, disk=0.02, bandwidth=0.02),
            parents=(f"{jid}.t{i - 1}",) if i else (),
        )
        for i in range(n)
    ]
    return Job.from_tasks(jid, tasks, deadline=1e6, arrival_time=arrival)


# ==================================================================== codec
class TestJobCodec:
    def test_round_trip_preserves_everything(self):
        spec = _spec(3)
        job = build_workload(spec, rng=5).jobs[1]
        back = job_from_dict(job_to_dict(job))
        assert back == job
        # Insertion order is part of the contract (scoring iterates it).
        assert list(back.tasks) == list(job.tasks)

    def test_round_trip_through_json(self):
        job = _job("J", 4, arrival=12.5)
        back = job_from_dict(json.loads(json.dumps(job_to_dict(job))))
        assert back == job

    def test_optional_fields(self):
        task = Task(
            task_id="J.t0",
            job_id="J",
            size_mi=10.0,
            demand=ResourceVector(cpu=1.0, mem=0.5),
            input_mb=64.0,
            input_location="n1",
        )
        job = Job.from_tasks("J", [task], deadline=100.0, weight=0.5)
        back = job_from_dict(job_to_dict(job))
        assert back.tasks["J.t0"].input_mb == 64.0
        assert back.tasks["J.t0"].input_location == "n1"
        assert back.weight == 0.5


# =============================================================== retirement
class TestRetirementParity:
    """retire_completed must change memory, never results."""

    def _run(self, retire: bool):
        cluster = _cluster()
        workload = build_workload(_spec(6, cluster), rng=3)
        engine = SimEngine(
            cluster,
            workload.jobs,
            HeuristicScheduler(cluster),
            sim_config=_sim_cfg(retire_completed=retire, retire_batch=2),
        )
        return engine, engine.run()

    def test_metrics_identical_mod_fold_order(self):
        engine_off, metrics_off = self._run(False)
        engine_on, metrics_on = self._run(True)
        base = metrics_off.as_dict()
        folded = metrics_on.as_dict()
        for key, value in base.items():
            # Retirement folds per-task waits into per-job partial sums,
            # which reorders the float summation — everything else is exact.
            if key in ("avg_job_waiting", "avg_task_waiting"):
                assert folded[key] == pytest.approx(value, rel=1e-9)
            else:
                assert folded[key] == value, key
        assert folded["jobs_retired"] == 6.0
        assert "jobs_retired" not in base  # keys only appear when active

    def test_live_state_evicted_end_to_end(self):
        engine, metrics = self._run(True)
        state = engine.runtime.state
        assert state.jobs == {} and state.tasks == {}
        assert state.retired_jobs == 6
        assert state.retired_tasks == metrics.tasks_completed
        assert engine.runtime.views._static == {}


class TestRetirementManager:
    def test_events_and_batching(self):
        cluster = _cluster(2)
        engine = _streaming_engine(
            cluster, _sim_cfg(retire_completed=True, retire_batch=50)
        )
        retired = []
        engine.runtime.bus.subscribe(JobRetired, retired.append)
        engine.submit_job(_job("A", 3))
        engine.submit_job(_job("B", 2, arrival=1.0))
        while engine.pump(500):
            pass
        # Batch threshold (50) never reached: both jobs still pending.
        assert set(engine.retirement.pending) == {"A", "B"}
        assert retired == []
        engine.finalize()  # final sweep drains the buffer
        assert engine.retirement.pending == ()
        assert {e.job_id for e in retired} == {"A", "B"}
        assert sum(e.tasks for e in retired) == 5

    def test_incomplete_job_rejected(self):
        cluster = _cluster(2)
        engine = _streaming_engine(cluster)
        engine.submit_job(_job("A", 3))
        engine.pump(2)  # arrival only; nothing finished
        engine.retirement._pending.append("A")
        with pytest.raises(SimulationError, match="incomplete"):
            engine.retirement.sweep()

    def test_snapshot_round_trip(self):
        manager = RetirementManager.__new__(RetirementManager)
        manager._pending = ["X", "Y"]
        state = manager.snapshot_state()
        other = RetirementManager.__new__(RetirementManager)
        other.restore_state(json.loads(json.dumps(state)))
        assert other._pending == ["X", "Y"]
        other.restore_state(None)
        assert other._pending == []


# ================================================================== sources
class TestSyntheticSource:
    def test_bit_identical_to_batch_builder(self):
        spec = _spec(8)
        batch = build_workload(spec, rng=11).jobs
        source = SyntheticSource(spec, seed=11)
        streamed = []
        while not source.exhausted:
            streamed.append(source.next_job())
        assert source.next_job() is None
        assert len(streamed) == len(batch)
        for a, b in zip(streamed, batch):
            assert job_to_dict(a) == job_to_dict(b)

    def test_cursor_resume_is_exact(self):
        spec = _spec(8)
        source = SyntheticSource(spec, seed=11)
        head = [source.next_job() for _ in range(3)]
        cursor = json.loads(json.dumps(source.cursor()))
        rest = [source.next_job() for _ in range(5)]
        resumed = SyntheticSource(spec, seed=11)
        resumed.restore(cursor)
        for want in rest:
            assert job_to_dict(resumed.next_job()) == job_to_dict(want)
        assert resumed.exhausted

    def test_cursor_kind_checked(self):
        source = SyntheticSource(_spec(2), seed=1)
        with pytest.raises(ValueError, match="kind"):
            source.restore({"kind": "trace"})


def _trace_csv(path, include_junk: bool = True) -> None:
    """A tiny job-contiguous task_events CSV: two good jobs, one
    all-quarantined group, one reordered reappearance, assorted junk."""

    def sched(ts, job, idx, cpu="0.5", mem="0.25"):
        return f"{ts},,{job},{idx},,1,,,,{cpu},{mem}"

    def finish(ts, job, idx):
        return f"{ts},,{job},{idx},,4,,,,,"

    lines = [
        sched(1_000_000, "j1", 0),
        finish(3_000_000, "j1", 0),
        sched(2_000_000, "j1", 1),
        finish(5_000_000, "j1", 1),
    ]
    if include_junk:
        lines += [
            "truncated,row",  # short_row
            sched("garbage", "j2", 0),  # bad_field (timestamp)
            sched(6_000_000, "j2", 0, cpu="2.0"),  # bad_resources (out of range)
            sched(6_500_000, "j2", 1),
            finish(6_400_000, "j2", 1),  # bad_timestamp (finish <= start)
            finish(7_000_000, "j2", 2),  # unpaired_finish
            sched(7_500_000, "j2", 3),  # unpaired_schedule (no FINISH)
        ]
    else:
        lines += [sched(6_000_000, "j2", 0), finish(8_000_000, "j2", 0)]
    lines += [
        sched(9_000_000, "j3", 0),
        finish(11_000_000, "j3", 0),
        sched(12_000_000, "j1", 0),  # reordered reappearance of j1
        finish(13_000_000, "j1", 0),
    ]
    path.write_text("\n".join(lines) + "\n")


class TestTraceSource:
    def test_streams_good_jobs_and_buckets_junk(self, tmp_path):
        path = tmp_path / "events.csv"
        _trace_csv(path)
        source = TraceSource(path)
        jobs = []
        while (job := source.next_job()) is not None:
            jobs.append(job)
        assert [j.job_id for j in jobs] == ["gj1", "gj3"]
        assert len(jobs[0].tasks) == 2
        assert source.exhausted
        stats = source.stats
        assert stats.short_row == 1
        assert stats.bad_field == 1
        assert stats.bad_resources == 1
        assert stats.bad_timestamp == 1
        assert stats.unpaired_finish == 1
        assert stats.unpaired_schedule == 1
        assert source.reordered_jobs == 1
        assert stats.records == 3
        source.close()

    def test_arrival_from_earliest_start(self, tmp_path):
        path = tmp_path / "events.csv"
        _trace_csv(path, include_junk=False)
        source = TraceSource(path)
        job = source.next_job()
        assert job.arrival_time == pytest.approx(1.0)
        source.close()

    def test_cursor_resume_skips_consumed_prefix(self, tmp_path):
        path = tmp_path / "events.csv"
        _trace_csv(path)
        source = TraceSource(path)
        first = source.next_job()
        cursor = json.loads(json.dumps(source.cursor()))
        rest = []
        while (job := source.next_job()) is not None:
            rest.append(job)
        source.close()

        resumed = TraceSource(path)
        resumed.restore(cursor)
        resumed_rest = []
        while (job := resumed.next_job()) is not None:
            resumed_rest.append(job)
        assert [j.job_id for j in resumed_rest] == [j.job_id for j in rest]
        for a, b in zip(resumed_rest, rest):
            assert job_to_dict(a) == job_to_dict(b)
        # The reordered reappearance is still detected across the resume
        # (the seen-set travels in the cursor).
        assert resumed.reordered_jobs == source.reordered_jobs
        resumed.close()


# ================================================================= frontier
class TestStreamingFrontier:
    def test_requires_streaming_and_retirement(self):
        cluster = _cluster(2)
        batch = SimEngine(
            cluster, [_job("A", 2)], HeuristicScheduler(cluster),
            sim_config=_sim_cfg(retire_completed=True),
        )
        with pytest.raises(SimulationError, match="streaming"):
            StreamingFrontier(batch, _ListSource([]))
        no_retire = SimEngine(
            cluster, [], HeuristicScheduler(cluster),
            sim_config=_sim_cfg(), streaming=True,
        )
        with pytest.raises(SimulationError, match="retire_completed"):
            StreamingFrontier(no_retire, _ListSource([]))

    def test_window_bounds_live_tasks(self):
        cluster = _cluster(2)
        spec = _spec(10, cluster, scale=80.0)
        engine = _streaming_engine(cluster)
        source = SyntheticSource(spec, seed=4)
        cap = 40
        frontier = StreamingFrontier(
            engine,
            source,
            FrontierConfig(max_live_tasks=cap, admit_batch=4, pump_pops=64),
        )
        peak = [0]
        engine.runtime.kernel.settle_observers.append(
            lambda _e: peak.__setitem__(
                0, max(peak[0], len(engine.runtime.state.tasks))
            )
        )
        metrics = frontier.run()
        assert metrics.jobs_completed == 10
        assert frontier.admitted == 10
        assert peak[0] <= cap
        assert peak[0] > 0
        assert engine.runtime.state.jobs == {}  # everything retired

    def test_oversized_job_admitted_alone(self):
        cluster = _cluster(2)
        jobs = [_job("BIG", 12), _job("SMALL", 2, arrival=1.0)]
        engine = _streaming_engine(cluster)
        frontier = StreamingFrontier(
            engine,
            _ListSource(jobs),
            FrontierConfig(max_live_tasks=5, admit_batch=8, pump_pops=64),
        )
        metrics = frontier.run()
        # BIG (12 tasks > cap 5) enters an empty window rather than
        # deadlocking; SMALL waits for it to drain.
        assert metrics.jobs_completed == 2

    def test_stale_arrivals_clamped_to_clock(self):
        cluster = _cluster(2)
        # Both arrive at t=0; the window (3 < 4+4) forces B to wait until
        # A drains, by which time the clock has passed B's arrival.
        # Without the clamp submit_job raises ValueError.
        jobs = [_job("A", 4), _job("B", 4)]
        engine = _streaming_engine(cluster)
        frontier = StreamingFrontier(
            engine,
            _ListSource(jobs),
            FrontierConfig(max_live_tasks=3, admit_batch=2, pump_pops=64),
        )
        metrics = frontier.run()
        assert metrics.jobs_completed == 2

    def test_retire_batch_tail_does_not_starve_admission(self):
        """With ``retire_batch`` > 1, completed jobs below a full batch
        still occupy the live window when the heap drains.  The run loop
        must force the sweep instead of spinning on a refused admission."""
        cluster = _cluster(2)
        jobs = [_job("A", 4), _job("B", 4), _job("C", 4)]
        engine = _streaming_engine(
            cluster, sim=_sim_cfg(retire_completed=True, retire_batch=3)
        )
        frontier = StreamingFrontier(
            engine,
            _ListSource(jobs),
            FrontierConfig(max_live_tasks=5, admit_batch=2, pump_pops=64),
        )
        metrics = frontier.run()
        assert metrics.jobs_completed == 3
        assert metrics.as_dict()["jobs_retired"] == 3.0

    def test_stuck_replay_reports_frontier_position(self):
        from repro.sim import SimulationStuck

        cluster = _cluster(2)
        engine = _streaming_engine(cluster)
        frontier = StreamingFrontier(engine, _ListSource([_job("A", 2)]))
        frontier.admit()
        # Wedge the run: the heap reads as drained while A is unfinished.
        engine.pump = lambda max_pops=None: 0
        with pytest.raises(SimulationStuck, match=r"frontier\("):
            frontier.run()


# ================================================================= watchdog
class TestMemoryWatchdog:
    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryWatchdog(0)
        with pytest.raises(ValueError):
            MemoryWatchdog(100, resume_fraction=1.5)

    def test_peak_tracking_with_scripted_probe(self):
        readings = iter([10, 50, 30])
        wd = MemoryWatchdog(100, probe=lambda: next(readings))
        assert wd.sample() == 10
        assert wd.sample() == 50
        assert wd.sample() == 30
        assert wd.peak == 50 and wd.samples == 3

    def test_real_probe_returns_positive(self):
        from repro.sim.frontier import read_rss_bytes

        assert read_rss_bytes() > 0


class TestDegradationLadder:
    def test_pause_shed_resume(self, tmp_path):
        """Scripted pressure walks all three rungs: admission pauses, a
        sweep happens, the backlog spills to JSONL, then admission
        resumes under the hysteresis threshold and the replay finishes."""
        cluster = _cluster(2)
        spec = _spec(8, cluster, scale=80.0)
        spill = tmp_path / "spill.jsonl"
        engine = _streaming_engine(cluster)
        events = []
        bus = engine.runtime.bus
        for kind in (AdmissionPaused, AdmissionResumed, JobShed):
            bus.subscribe(kind, events.append)

        pressure = {"on": False}
        ceiling = 100 * 1024 * 1024

        def probe():
            # Over the ceiling while "on", then comfortably below.
            return ceiling * 2 if pressure["on"] else ceiling // 2

        source = SyntheticSource(spec, seed=4)
        frontier = StreamingFrontier(
            engine,
            source,
            FrontierConfig(
                max_live_tasks=60,
                admit_batch=2,
                pump_pops=32,
                rss_ceiling_mb=100.0,
                watchdog_interval=1,
                spill_path=str(spill),
            ),
            probe=probe,
        )

        # Turn pressure on once some jobs are in flight, off again later.
        ticks = {"n": 0}

        def pulse(_e):
            ticks["n"] += 1
            if ticks["n"] == 40:
                pressure["on"] = True
            elif ticks["n"] == 400:
                pressure["on"] = False

        engine.runtime.kernel.settle_observers.append(pulse)
        metrics = frontier.run()

        pauses = [e for e in events if isinstance(e, AdmissionPaused)]
        resumes = [e for e in events if isinstance(e, AdmissionResumed)]
        sheds = [e for e in events if isinstance(e, JobShed)]
        assert pauses and resumes and sheds
        assert frontier.shed == len(sheds)
        assert metrics.admission_pauses == len(pauses)
        assert metrics.jobs_shed == len(sheds)
        # Shed jobs landed in the spill, one JSON job per line.
        spilled = [
            job_from_dict(json.loads(line))
            for line in spill.read_text().splitlines()
        ]
        assert {j.job_id for j in spilled} == {e.job_id for e in sheds}
        # Everything admitted (= drawn - shed) completed.
        assert metrics.jobs_completed == frontier.admitted
        assert frontier.admitted + frontier.shed == 8

    def test_pinned_shut_is_an_error_not_a_hang(self):
        cluster = _cluster(2)
        engine = _streaming_engine(cluster)
        frontier = StreamingFrontier(
            engine,
            _ListSource([_job("A", 2), _job("B", 2, arrival=1.0)]),
            FrontierConfig(
                max_live_tasks=3,
                admit_batch=1,
                pump_pops=32,
                rss_ceiling_mb=1.0,
                watchdog_interval=1,
            ),
            probe=lambda: 10 * 1024 * 1024,  # forever over a 1 MB ceiling
        )
        with pytest.raises(SimulationError, match="admission shut"):
            frontier.run()


class TestWatchdogLadderProperties:
    """Hypothesis: the pause→sweep→shed ladder is monotone for *any*
    probe sequence — rung N never fires without rung N-1 in the same
    check — and admission only ever resumes at or under the low-water
    mark, never inside the hysteresis band.

    The frontier is driven through ``_check_memory`` exactly as the run
    loop would, with a scripted probe; a parallel reference model of the
    ladder predicts the pause flag, every shed, and the sample count —
    rung 2 resamples after its sweep, so sweeps are visible in
    ``watchdog.samples`` without any instrumentation.
    """

    CEILING_MB = 1.0
    CEILING = 1024 * 1024  # CEILING_MB in bytes

    def _frontier(self, spill_dir, readings, resume_fraction):
        def probe(idx={"i": 0}):
            i, idx["i"] = idx["i"], idx["i"] + 1
            return readings[i] if i < len(readings) else readings[-1]

        engine = _streaming_engine(_cluster(2))
        return StreamingFrontier(
            engine,
            _ListSource([_job(f"J{i}", 1) for i in range(len(readings))]),
            FrontierConfig(
                max_live_tasks=500,
                admit_batch=1,
                pump_pops=8,
                rss_ceiling_mb=self.CEILING_MB,
                watchdog_interval=1,
                resume_fraction=resume_fraction,
                spill_path=str(spill_dir / "spill.jsonl"),
            ),
            probe=probe,
        )

    @staticmethod
    def _model(readings, calls, ceiling, resume_below, jobs):
        """Replay the documented ladder semantics over the same virtual
        probe tape (exhausted tape repeats its last value)."""
        i = 0

        def take():
            nonlocal i
            v = readings[i] if i < len(readings) else readings[-1]
            i += 1
            return int(v)

        paused, sweeps, sheds, remaining = False, 0, 0, jobs
        for _ in range(calls):
            r = take()
            if r > ceiling:
                if not paused:
                    paused = True  # rung 1
                else:
                    sweeps += 1  # rung 2 …
                    if take() > ceiling:  # … resamples, then maybe
                        took = min(1, remaining)  # rung 3 (admit_batch=1)
                        sheds += took
                        remaining -= took
            elif paused and r <= resume_below:
                paused = False
        return paused, i, sweeps, sheds

    @given(
        readings=st.lists(
            st.integers(min_value=0, max_value=2 * CEILING),
            min_size=1,
            max_size=30,
        ),
        resume_fraction=st.floats(
            min_value=0.5, max_value=0.99, allow_nan=False
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_ladder_matches_model(self, readings, resume_fraction):
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            frontier = self._frontier(
                pathlib.Path(tmp), readings, resume_fraction
            )
            wd = frontier.watchdog
            events = []
            bus = frontier._engine.runtime.bus
            for kind in (AdmissionPaused, AdmissionResumed, JobShed):
                bus.subscribe(kind, events.append)

            calls = len(readings)
            for _ in range(calls):
                frontier._check_memory()

            paused, consumed, sweeps, sheds = self._model(
                readings, calls, wd.ceiling, wd.resume_below, len(readings)
            )
            pauses = [e for e in events if isinstance(e, AdmissionPaused)]
            resumes = [e for e in events if isinstance(e, AdmissionResumed)]
            shed_events = [e for e in events if isinstance(e, JobShed)]

            # The ladder walked exactly the modelled path.
            assert frontier.paused == paused
            assert wd.samples == consumed
            assert wd.samples - calls == sweeps  # each sweep resamples once
            assert frontier.shed == sheds == len(shed_events)
            # Monotone: no rung without every rung below it.
            if shed_events:
                assert sweeps > 0
            if sweeps:
                assert pauses
            # Pause only ever fires over the ceiling; resume only at or
            # under the low-water mark — never inside the hysteresis band.
            assert all(e.rss_bytes > wd.ceiling for e in pauses)
            assert all(e.rss_bytes <= wd.resume_below for e in resumes)
            # Pause/resume events alternate and balance the final flag.
            assert len(pauses) - len(resumes) == (1 if frontier.paused else 0)


# =========================================================== crash + resume
class TestMidStreamResume:
    def _run_reference(self, tmp_path, cluster, spec):
        engine = _streaming_engine(
            cluster, journal=str(tmp_path / "ref.journal")
        )
        frontier = StreamingFrontier(
            engine,
            SyntheticSource(spec, seed=9),
            FrontierConfig(max_live_tasks=50, admit_batch=2, pump_pops=64),
        )
        metrics = frontier.run()
        engine.journal.close()
        return metrics

    def test_kill_and_resume_byte_identical(self, tmp_path):
        from repro.sim import SimulatedCrash, inject_crash

        cluster = _cluster(2)
        spec = _spec(8, cluster, scale=80.0)
        ref_metrics = self._run_reference(tmp_path, cluster, spec)
        ref_journal = (tmp_path / "ref.journal").read_bytes()

        snap_dir = tmp_path / "snaps"
        journal = tmp_path / "crash.journal"
        fcfg = FrontierConfig(max_live_tasks=50, admit_batch=2, pump_pops=64)
        engine = _streaming_engine(
            cluster,
            journal=str(journal),
            snapshots=SnapshotConfig(directory=str(snap_dir), every_events=300),
        )
        frontier = StreamingFrontier(engine, SyntheticSource(spec, seed=9), fcfg)
        inject_crash(engine, at_pop=800)
        with pytest.raises(SimulatedCrash):
            frontier.run()

        found = latest_valid_snapshot(snap_dir)
        assert found is not None
        path, data = found
        assert data["frontier"]["source"]["kind"] == "synthetic"

        # Recover exactly as the CLI does: empty jobs (jobs_spec fills the
        # live window), a fresh source, the frontier cursor restored.
        recovered = SimEngine.restore(
            data,
            cluster,
            [],
            HeuristicScheduler(cluster),
            sim_config=_sim_cfg(retire_completed=True),
            streaming=True,
            journal=str(journal),
            snapshots=SnapshotConfig(directory=str(snap_dir), every_events=300),
        )
        source = SyntheticSource(spec, seed=9)
        resumed = StreamingFrontier(recovered, source, fcfg)
        resumed.restore_state(data.get("frontier"))
        metrics = resumed.run()
        recovered.journal.close()

        assert journal.read_bytes() == ref_journal
        assert metrics.as_dict() == ref_metrics.as_dict()
        assert resumed.admitted == 8

    def test_resume_retires_resurrected_rows(self):
        """A snapshot taken with completed-but-unswept jobs (``retire_batch``
        > 1) resurrects their tasks on restore — state maps, ArrayCore rows
        and all.  The restored sweep must free those rows too; otherwise
        the next full resync dereferences tasks that no longer exist."""
        cluster = _cluster(2)
        src_jobs = [_job("A", 2), _job("B", 2), _job("C", 3, arrival=5.0)]
        engine = _streaming_engine(
            cluster, sim=_sim_cfg(retire_completed=True, retire_batch=5)
        )
        frontier = StreamingFrontier(
            engine,
            _ListSource(src_jobs),
            FrontierConfig(max_live_tasks=100, admit_batch=2, pump_pops=64),
        )
        # Pump until A and B complete but stay unswept (pending < batch).
        frontier.admit()
        for _ in range(200):
            if engine.runtime.state.job_remaining.get("B") == 0:
                break
            engine.pump(32)
        assert set(engine.retirement.pending) == {"A", "B"}
        snapshot = engine.snapshot()

        # Restore with a smaller batch so the sweep fires mid-run — after
        # C is admitted, while its events still pump and resync the core.
        recovered = SimEngine.restore(
            snapshot,
            cluster,
            [],
            HeuristicScheduler(cluster),
            sim_config=_sim_cfg(retire_completed=True, retire_batch=2),
            streaming=True,
        )
        resumed = StreamingFrontier(
            recovered,
            _ListSource(src_jobs),
            FrontierConfig(max_live_tasks=100, admit_batch=2, pump_pops=64),
        )
        resumed.restore_state(snapshot["frontier"])
        metrics = resumed.run()
        assert metrics.jobs_completed == 3
        assert metrics.as_dict()["jobs_retired"] == 3.0

    def test_snapshot_carries_retire_and_frontier_sections(self, tmp_path):
        cluster = _cluster(2)
        engine = _streaming_engine(cluster)
        frontier = StreamingFrontier(
            engine,
            _ListSource([_job("A", 2)]),
            FrontierConfig(max_live_tasks=10, admit_batch=1, pump_pops=8),
        )
        frontier.admit()
        engine.pump(8)
        snapshot = engine.snapshot()
        assert snapshot["fingerprint"]["retire"] is True
        assert "retire" in snapshot
        assert snapshot["frontier"]["admitted"] == 1
        assert snapshot["frontier"]["source"] == {"kind": "list", "i": 1}
        # The section is pure JSON (a snapshot must serialize).
        json.dumps(snapshot)


# ==================================================== allocator churn bound
class TestDenseIdsChurnBound:
    @given(
        ops=st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 100)), max_size=40
        )
    )
    @settings(deadline=None, max_examples=150)
    def test_capacity_bounded_by_live_high_water(self, ops):
        """Admit/retire churn: after any interleaving of job admissions
        (k allocs) and retirements (freeing a whole job's ids), the dense
        range and free list never exceed the live-window high-water mark —
        the allocator cannot leak under streaming replay churn."""
        ids = DenseIds()
        jobs: list[list[int]] = []
        live = 0
        high_water = 0
        for admit_k, retire_pick in ops:
            rows = [ids.alloc() for _ in range(admit_k)]
            assert len(set(rows)) == admit_k  # no aliasing within a job
            jobs.append(rows)
            live += admit_k
            high_water = max(high_water, live)
            if jobs and retire_pick % 2:
                victim = jobs.pop(retire_pick % len(jobs))
                for row in victim:
                    ids.free(row)
                live -= len(victim)
            assert ids.capacity <= high_water
            assert ids.free_count == ids.capacity - live
        # Retire everything: the free list equals the dense range exactly.
        for rows in jobs:
            for row in rows:
                ids.free(row)
        assert ids.free_count == ids.capacity <= high_water
