"""Tests for the data-locality extension."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task, layered_random_dag
from repro.locality import locality_fraction, with_random_inputs
from repro.sim import SimEngine


def mk(tid: str, input_mb=0.0, location=None, size=1000.0, parents=()) -> Task:
    return Task(
        task_id=tid, job_id="J", size_mi=size,
        demand=ResourceVector(cpu=1.0, mem=0.5),
        parents=tuple(parents), input_mb=input_mb, input_location=location,
    )


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestTaskTransferTime:
    def test_local_is_free(self):
        t = mk("a", input_mb=100.0, location="node-00")
        assert t.transfer_time("node-00", 1000.0) == 0.0

    def test_remote_pays(self):
        t = mk("a", input_mb=100.0, location="node-00")
        assert t.transfer_time("node-01", 50.0) == pytest.approx(2.0)

    def test_no_input_is_free(self):
        assert mk("a").transfer_time("anywhere", 50.0) == 0.0

    def test_input_without_location_rejected(self):
        with pytest.raises(ValueError, match="input_location"):
            mk("a", input_mb=10.0, location=None)

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id="a", job_id="J", size_mi=1.0, input_mb=-1.0,
                 input_location="n")


class TestWithRandomInputs:
    def test_only_roots_get_inputs(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 30, rng=1), deadline=1e9)
        [decorated] = with_random_inputs([job], cluster, rng=2, fraction=1.0)
        for tid, task in decorated.tasks.items():
            if not task.is_root:
                assert task.input_mb == 0.0
            else:
                assert task.input_mb > 0.0
                assert task.input_location in cluster

    def test_fraction_zero_changes_nothing(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 20, rng=1), deadline=1e9)
        [decorated] = with_random_inputs([job], cluster, rng=2, fraction=0.0)
        assert all(t.input_mb == 0.0 for t in decorated.tasks.values())

    def test_structure_preserved(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 25, rng=3), deadline=1e9)
        [decorated] = with_random_inputs([job], cluster, rng=4, fraction=0.7)
        assert decorated.num_tasks == job.num_tasks
        assert decorated.deadline == job.deadline
        for tid in job.tasks:
            assert decorated.tasks[tid].parents == job.tasks[tid].parents

    def test_deterministic(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 25, rng=3), deadline=1e9)
        a = with_random_inputs([job], cluster, rng=4)
        b = with_random_inputs([job], cluster, rng=4)
        assert [(t.input_mb, t.input_location) for t in a[0].tasks.values()] == [
            (t.input_mb, t.input_location) for t in b[0].tasks.values()
        ]

    def test_validation(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1e9)
        with pytest.raises(ValueError):
            with_random_inputs([job], cluster, fraction=1.5)
        with pytest.raises(ValueError):
            with_random_inputs([job], cluster, input_mb_range=(10.0, 5.0))


class TestLocalityAwarePlacement:
    def test_aware_planner_goes_local(self, cluster):
        # Input pinned to node-01; both nodes otherwise identical.
        job = Job.from_tasks(
            "J", [mk("a", input_mb=5000.0, location="node-01")], deadline=1e9
        )
        plan = HeuristicScheduler(cluster).schedule([job])
        assert plan.assignments["a"].node_id == "node-01"
        assert locality_fraction([job], plan) == 1.0

    def test_blind_planner_ignores_inputs(self, cluster):
        job = Job.from_tasks(
            "J", [mk("a", input_mb=5000.0, location="node-01")], deadline=1e9
        )
        plan = HeuristicScheduler(cluster, locality_aware=False).schedule([job])
        # Blind EFT ties break to node-00 — the remote node.
        assert plan.assignments["a"].node_id == "node-00"
        assert locality_fraction([job], plan) == 0.0

    def test_locality_fraction_vacuous(self, cluster):
        job = Job.from_tasks("J", [mk("a")], deadline=1e9)
        plan = HeuristicScheduler(cluster).schedule([job])
        assert locality_fraction([job], plan) == 1.0


class TestEngineTransferCharging:
    def _run(self, location: str, locality_aware: bool):
        cluster = Cluster([
            NodeSpec(node_id="n0", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0,
                     bandwidth_capacity=100.0),
            NodeSpec(node_id="n1", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0,
                     bandwidth_capacity=100.0),
        ])
        task = Task(task_id="a", job_id="J", size_mi=1000.0,
                    demand=ResourceVector(cpu=1.0, mem=0.5),
                    input_mb=500.0, input_location=location)
        job = Job.from_tasks("J", [task], deadline=1e6)
        eng = SimEngine(
            cluster, [job],
            HeuristicScheduler(cluster, locality_aware=locality_aware),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        return eng.run()

    def test_remote_placement_pays_transfer(self):
        # Blind planner puts the task on n0 while data lives on n1:
        # 500 MB / 100 MB/s = 5 s transfer + 2 s execution.
        m = self._run("n1", locality_aware=False)
        assert m.total_transfer_time == pytest.approx(5.0)
        assert m.makespan == pytest.approx(7.0, abs=0.01)

    def test_local_placement_is_free(self):
        m = self._run("n1", locality_aware=True)
        assert m.total_transfer_time == 0.0
        assert m.makespan == pytest.approx(2.0, abs=0.01)
