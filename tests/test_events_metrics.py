"""Tests for the event queue and metrics collector."""

import pytest

from repro.sim import Event, EventKind, EventQueue, MetricsCollector


class TestEventQueue:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.EPOCH_TICK)
        q.push(1.0, EventKind.JOB_ARRIVAL, "j")
        q.push(3.0, EventKind.TASK_FINISH, ("t", 1))
        times = [q.pop().time for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        a = q.push(1.0, EventKind.JOB_ARRIVAL, "first")
        b = q.push(1.0, EventKind.JOB_ARRIVAL, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"
        assert a.seq < b.seq

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, EventKind.EPOCH_TICK)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(7.0, EventKind.EPOCH_TICK)
        assert q.peek_time() == 7.0

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(1.0, EventKind.EPOCH_TICK)
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestMetricsCollector:
    @pytest.fixture
    def mc(self) -> MetricsCollector:
        mc = MetricsCollector()
        mc.register_job("J1", arrival=0.0, deadline=100.0)
        mc.register_job("J2", arrival=10.0, deadline=50.0)
        for t, j in [("a", "J1"), ("b", "J1"), ("c", "J2")]:
            mc.register_task(t, j)
        return mc

    def test_makespan_from_first_arrival(self, mc):
        mc.record_task_completion("a", 40.0)
        mc.record_task_completion("b", 90.0)
        m = mc.finalize(90.0)
        assert m.makespan == pytest.approx(90.0)  # 90 - min arrival 0

    def test_deadline_accounting(self, mc):
        mc.record_task_completion("a", 40.0)
        mc.record_job_completion("J1", 40.0)   # within 100
        mc.record_task_completion("c", 70.0)
        mc.record_job_completion("J2", 70.0)   # misses 50
        m = mc.finalize(70.0)
        assert m.jobs_completed == 2
        assert m.jobs_within_deadline == 1
        assert m.deadline_misses == 1

    def test_throughput_properties(self, mc):
        mc.record_task_completion("a", 10.0)
        mc.record_task_completion("b", 20.0)
        mc.record_job_completion("J1", 20.0)
        m = mc.finalize(20.0)
        assert m.throughput_tasks_per_ms == pytest.approx(2 / 20_000.0)
        assert m.throughput_jobs_per_s == pytest.approx(1 / 20.0)

    def test_zero_makespan_throughput(self):
        m = MetricsCollector().finalize(0.0)
        assert m.throughput_tasks_per_ms == 0.0
        assert m.throughput_jobs_per_s == 0.0

    def test_wait_accumulates(self, mc):
        mc.record_wait("a", 5.0)
        mc.record_wait("a", 3.0)
        mc.record_task_completion("a", 10.0)
        m = mc.finalize(10.0)
        assert m.avg_task_waiting == pytest.approx(8.0)

    def test_negative_wait_rejected(self, mc):
        with pytest.raises(ValueError):
            mc.record_wait("a", -1.0)

    def test_job_mean_of_means(self, mc):
        # J1: waits 10 and 0 -> mean 5. J2: wait 1 -> mean 1. Overall 3.
        mc.record_wait("a", 10.0)
        mc.record_wait("c", 1.0)
        for t in ("a", "b", "c"):
            mc.record_task_completion(t, 10.0)
        m = mc.finalize(10.0)
        assert m.avg_job_waiting == pytest.approx((5.0 + 1.0) / 2)

    def test_preemption_and_stall_counters(self, mc):
        mc.record_preemption(0.1)
        mc.record_preemption(0.1)
        mc.record_stall_eviction(0.1)
        mc.record_disorder()
        mc.record_stall(7.0)
        m = mc.finalize(1.0)
        assert m.num_preemptions == 2
        assert m.num_stall_evictions == 1
        assert m.num_disorders == 1
        assert m.total_context_switch_time == pytest.approx(0.3)
        assert m.total_stalled_time == pytest.approx(7.0)

    def test_as_dict_keys(self, mc):
        d = mc.finalize(1.0).as_dict()
        for key in ("makespan", "num_preemptions", "throughput_tasks_per_ms",
                    "avg_job_waiting", "num_disorders", "num_stall_evictions"):
            assert key in d


class TestLatencySampling:
    def test_disabled_by_default(self):
        mc = MetricsCollector()
        mc.register_job("J", 0.0, 10.0)
        mc.register_task("t", "J")
        mc.record_task_completion("t", 5.0, latency=4.0)
        assert mc.latency_samples() == {}

    def test_enabled_collects(self):
        mc = MetricsCollector(collect_samples=True)
        mc.register_job("J", 0.0, 10.0)
        mc.register_task("t", "J")
        mc.record_task_completion("t", 5.0, latency=4.0)
        assert mc.latency_samples() == {"t": 4.0}

    def test_negative_latency_rejected(self):
        mc = MetricsCollector(collect_samples=True)
        with pytest.raises(ValueError):
            mc.record_task_completion("t", 5.0, latency=-1.0)

    def test_engine_populates_samples(self):
        from repro.cluster import uniform_cluster
        from repro.config import SimConfig
        from repro.core import HeuristicScheduler
        from repro.dag import Job, chain_dag
        from repro.sim import SimEngine

        cluster = uniform_cluster(1, cpu_size=2.0, mem_size=2.0, mips_per_unit=500.0)
        job = Job.from_tasks("J", chain_dag("J", 3, size_mi=1000.0), deadline=1e6)
        engine = SimEngine(
            cluster, [job], HeuristicScheduler(cluster),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                                 collect_task_samples=True),
        )
        engine.run()
        samples = engine.metrics.latency_samples()
        assert set(samples) == set(job.tasks)
        assert all(v > 0 for v in samples.values())
