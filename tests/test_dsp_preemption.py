"""Unit tests for DSP's Algorithm 1 (urgent pass, C1/C2, PP filter, δ)."""

import pytest

from repro.config import DSPConfig
from repro.core import DSPPreemption
from repro.sim.policy import PreemptionDecision

from tests.helpers import make_node_view, make_view


class StubCtx:
    """Minimal SimContext substitute driving the priority evaluator."""

    def __init__(self, tasks, remaining=None, waiting=None, allowable=None):
        self.tasks = tasks
        self._rem = remaining or {}
        self._wait = waiting or {}
        self._allow = allowable or {}

    def remaining_time(self, tid):
        return self._rem.get(tid, 10.0)

    def waiting_time(self, tid):
        return self._wait.get(tid, 0.0)

    def allowable_wait(self, tid):
        return self._allow.get(tid, 100.0)

    def is_completed(self, tid):
        return False


def attach_policy(config=None, tasks=None, **signals) -> DSPPreemption:

    tasks = tasks or {}
    policy = DSPPreemption(config or DSPConfig())
    policy.attach(StubCtx(tasks, **signals))
    return policy


def flat_tasks(*ids: str):
    from tests.helpers import make_task

    return {tid: make_task(task_id=tid) for tid in ids}


class TestNames:
    def test_pp_name(self):
        assert DSPPreemption(DSPConfig()).name == "DSP"

    def test_wopp_name(self):
        assert DSPPreemption(DSPConfig().without_pp()).name == "DSPW/oPP"

    def test_flags(self):
        p = DSPPreemption()
        assert p.respects_dependencies and p.uses_checkpointing


class TestUrgentPass:
    def test_urgent_by_allowable(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(tasks=tasks, remaining={"w": 10.0, "r": 10.0})
        view = make_node_view(
            running=[make_view("r", running=True, allowable=100.0)],
            waiting=[make_view("w", allowable=0.005)],  # <= epsilon
        )
        decisions = policy.select_preemptions(view)
        assert decisions == [PreemptionDecision("w", "r")]

    def test_urgent_by_overdue_tau(self):
        tasks = flat_tasks("w", "r")
        cfg = DSPConfig(tau=30.0)
        # Give the waiting task a LOWER priority than the runner so only
        # the urgent pass (not C1) can fire.
        policy = attach_policy(cfg, tasks=tasks, remaining={"w": 100.0, "r": 0.1})
        view = make_node_view(
            running=[make_view("r", running=True, allowable=100.0, remaining=0.1)],
            waiting=[make_view("w", overdue_waiting=31.0, remaining=100.0)],
        )
        assert policy.select_preemptions(view) == [PreemptionDecision("w", "r")]

    def test_not_urgent_below_tau(self):
        tasks = flat_tasks("w", "r")
        cfg = DSPConfig(tau=30.0)
        policy = attach_policy(cfg, tasks=tasks, remaining={"w": 100.0, "r": 0.1})
        view = make_node_view(
            running=[make_view("r", running=True, allowable=100.0, remaining=0.1)],
            waiting=[make_view("w", overdue_waiting=5.0, remaining=100.0)],
        )
        assert list(policy.select_preemptions(view)) == []

    def test_urgent_still_respects_c2(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(tasks=tasks)
        view = make_node_view(
            running=[make_view("r", running=True, allowable=100.0)],
            waiting=[make_view("w", allowable=0.0, depends_on=frozenset({"r"}))],
        )
        assert list(policy.select_preemptions(view)) == []

    def test_non_runnable_waiting_skipped(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(tasks=tasks)
        view = make_node_view(
            running=[make_view("r", running=True, allowable=100.0)],
            waiting=[make_view("w", allowable=0.0, runnable=False)],
        )
        assert list(policy.select_preemptions(view)) == []


class TestConditionsC1C2:
    def test_c1_higher_priority_preempts(self):
        tasks = flat_tasks("w", "r")
        # w nearly done (high 1/t_rem), r long: w outranks r by a lot.
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w": 0.01, "r": 100.0},
        )
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0, allowable=100.0)],
            waiting=[make_view("w", remaining=0.01)],
        )
        assert policy.select_preemptions(view) == [PreemptionDecision("w", "r")]

    def test_c1_lower_priority_does_not(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w": 100.0, "r": 0.01},
        )
        view = make_node_view(
            running=[make_view("r", running=True, remaining=0.01, allowable=100.0)],
            waiting=[make_view("w", remaining=100.0)],
        )
        assert list(policy.select_preemptions(view)) == []

    def test_c2_skips_ancestor_takes_next(self):
        tasks = flat_tasks("w", "r1", "r2")
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w": 0.01, "r1": 200.0, "r2": 100.0},
        )
        # r1 has the lowest priority but w depends on it -> r2 is evicted.
        view = make_node_view(
            running=[
                make_view("r1", running=True, remaining=200.0, allowable=100.0),
                make_view("r2", running=True, remaining=100.0, allowable=100.0),
            ],
            waiting=[make_view("w", remaining=0.01, depends_on=frozenset({"r1"}))],
        )
        assert policy.select_preemptions(view) == [PreemptionDecision("w", "r2")]

    def test_running_with_tight_slack_not_preemptable(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w": 0.01, "r": 100.0},
        )
        # allowable_wait (2.0) <= epoch (5.0): protected.
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0, allowable=2.0)],
            waiting=[make_view("w", remaining=0.01)],
            epoch=5.0,
        )
        assert list(policy.select_preemptions(view)) == []

    def test_victim_used_once(self):
        tasks = flat_tasks("w1", "w2", "r")
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w1": 0.01, "w2": 0.02, "r": 100.0},
        )
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0, allowable=100.0)],
            waiting=[make_view("w1", remaining=0.01), make_view("w2", remaining=0.02)],
        )
        decisions = policy.select_preemptions(view)
        assert len(decisions) == 1  # only one victim available


class TestPPFilter:
    def _view(self):
        return make_node_view(
            running=[make_view("r", running=True, remaining=9.0, allowable=100.0)],
            waiting=[make_view("w", remaining=8.0), make_view("z", remaining=10.0)],
        )

    def test_small_gap_suppressed_with_pp(self):
        # Priorities: leaf = 0.5/rem + ...; w vs r gap tiny relative to the
        # neighbour scale -> PP must suppress.
        tasks = flat_tasks("w", "r", "z")
        policy = attach_policy(
            DSPConfig(rho=1.5), tasks=tasks,
            remaining={"w": 8.0, "r": 9.0, "z": 10.0},
            allowable={"w": 0.0, "r": 0.0, "z": 0.0},
            waiting={"w": 0.0, "r": 0.0, "z": 0.0},
        )
        assert list(policy.select_preemptions(self._view())) == []

    def test_same_gap_allowed_without_pp(self):
        tasks = flat_tasks("w", "r", "z")
        policy = attach_policy(
            DSPConfig(rho=1.5).without_pp(), tasks=tasks,
            remaining={"w": 8.0, "r": 9.0, "z": 10.0},
            allowable={"w": 0.0, "r": 0.0, "z": 0.0},
            waiting={"w": 0.0, "r": 0.0, "z": 0.0},
        )
        decisions = policy.select_preemptions(self._view())
        assert decisions == [PreemptionDecision("w", "r")]

    def test_large_gap_passes_pp(self):
        tasks = flat_tasks("w", "r", "z")
        policy = attach_policy(
            DSPConfig(rho=1.5), tasks=tasks,
            remaining={"w": 0.01, "r": 9.0, "z": 10.0},
            allowable={"w": 0.0, "r": 0.0, "z": 0.0},
            waiting={"w": 0.0, "r": 0.0, "z": 0.0},
        )
        view = make_node_view(
            running=[make_view("r", running=True, remaining=9.0, allowable=100.0)],
            waiting=[make_view("w", remaining=0.01), make_view("z", remaining=10.0)],
        )
        assert policy.select_preemptions(view) == [PreemptionDecision("w", "r")]


class TestDeltaWindow:
    def test_only_head_fraction_considered(self):
        # δ = 0.2 over 10 waiting tasks -> only the first 2 may preempt.
        tasks = flat_tasks("r1", "r2", "r3", *(f"w{i}" for i in range(10)))
        remaining = {f"w{i}": 0.01 for i in range(10)}
        remaining.update({"r1": 100.0, "r2": 100.0, "r3": 100.0})
        policy = attach_policy(
            DSPConfig(delta=0.2).without_pp(), tasks=tasks, remaining=remaining,
        )
        view = make_node_view(
            running=[
                make_view(r, running=True, remaining=100.0, allowable=100.0)
                for r in ("r1", "r2", "r3")
            ],
            waiting=[make_view(f"w{i}", remaining=0.01) for i in range(10)],
        )
        decisions = policy.select_preemptions(view)
        assert len(decisions) == 2
        assert {d.preempting_task_id for d in decisions} == {"w0", "w1"}


class TestEdgeCases:
    def test_empty_views(self):
        policy = attach_policy(tasks=flat_tasks("x"))
        assert list(policy.select_preemptions(make_node_view([], []))) == []
        only_running = make_node_view([make_view("x", running=True)], [])
        assert list(policy.select_preemptions(only_running)) == []

    def test_unattached_policy_raises(self):
        policy = DSPPreemption()
        view = make_node_view(
            [make_view("r", running=True)], [make_view("w")]
        )
        with pytest.raises(AssertionError):
            policy.select_preemptions(view)

    def test_non_preemptable_running_ignored(self):
        tasks = flat_tasks("w", "r")
        policy = attach_policy(
            DSPConfig().without_pp(), tasks=tasks,
            remaining={"w": 0.01, "r": 100.0},
        )
        view = make_node_view(
            running=[make_view("r", running=True, remaining=100.0,
                               allowable=100.0, preemptable=False)],
            waiting=[make_view("w", remaining=0.01)],
        )
        assert list(policy.select_preemptions(view)) == []
