"""Tests for elastic cluster membership: plan model, join/drain
lifecycle, autoscaler, fault composition and snapshot resume."""

import json

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import ElasticConfig, SimConfig, SnapshotConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    FaultEvent,
    FaultKind,
    MembershipEvent,
    SimEngine,
    SimulatedCrash,
    inject_crash,
    latest_valid_snapshot,
    membership_plan_from_json,
    membership_plan_to_json,
    normalize_membership_plan,
    random_membership_plan,
)


def mk(tid: str, size=5000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5))


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def one_lane_event(time: float, action: str, node_id: str) -> MembershipEvent:
    """A MembershipEvent whose join spec matches the one_lane nodes."""
    return MembershipEvent(
        time=time, action=action, node_id=node_id,
        cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0,
    )


def build(cluster, jobs, *, membership=None, elastic=None, **kw):
    return SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                             invariants="strict"),
        membership=membership, elastic=elastic, **kw,
    )


class TestMembershipPlan:
    def test_normalize_sorts_joins_before_drains(self):
        cl = one_lane(2)
        plan = normalize_membership_plan(
            [one_lane_event(5.0, "drain", "n1"),
             one_lane_event(5.0, "join", "x0")],
            cl,
        )
        assert [ev.action for ev in plan] == ["join", "drain"]

    def test_join_of_existing_node_rejected(self):
        with pytest.raises(ValueError, match="already-present"):
            normalize_membership_plan(
                [one_lane_event(1.0, "join", "n0")], one_lane(2)
            )

    def test_drain_of_absent_node_rejected(self):
        with pytest.raises(ValueError, match="absent"):
            normalize_membership_plan(
                [one_lane_event(1.0, "drain", "ghost")], one_lane(2)
            )

    def test_drain_of_earlier_drained_node_rejected(self):
        with pytest.raises(ValueError, match="absent"):
            normalize_membership_plan(
                [one_lane_event(1.0, "drain", "n1"),
                 one_lane_event(2.0, "drain", "n1")],
                one_lane(2),
            )

    def test_join_then_drain_of_same_node_allowed(self):
        plan = normalize_membership_plan(
            [one_lane_event(1.0, "join", "x0"),
             one_lane_event(9.0, "drain", "x0")],
            one_lane(2),
        )
        assert len(plan) == 2

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown membership action"):
            normalize_membership_plan(
                [one_lane_event(1.0, "explode", "n0")], one_lane(2)
            )

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            normalize_membership_plan(
                [one_lane_event(-1.0, "join", "x0")], one_lane(2)
            )

    def test_nonpositive_spec_rejected(self):
        ev = MembershipEvent(time=1.0, action="join", node_id="x0", cpu_size=0.0)
        with pytest.raises(ValueError, match="non-positive"):
            normalize_membership_plan([ev], one_lane(2))

    def test_json_round_trip(self):
        plan = [one_lane_event(3.0, "join", "x0"),
                one_lane_event(7.0, "drain", "n1")]
        data = membership_plan_to_json(plan)
        assert membership_plan_from_json(json.loads(json.dumps(data))) == tuple(plan)

    def test_random_plan_deterministic_and_valid(self):
        import numpy as np

        cl = uniform_cluster(4)
        a = random_membership_plan(
            cl, 1000.0, rng=np.random.default_rng(3), joins=2, drains=2
        )
        b = random_membership_plan(
            cl, 1000.0, rng=np.random.default_rng(3), joins=2, drains=2
        )
        assert a == b
        assert normalize_membership_plan(a, cl) == a
        # Never drains the first node, so the fleet cannot empty.
        assert all(ev.node_id != cl.nodes[0].node_id
                   for ev in a if ev.action == "drain")


class TestScriptedJoin:
    def test_joined_node_takes_work(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(8)], deadline=1e9)
        eng = build(
            cl, [job],
            membership=[one_lane_event(5.0, "join", "x0")],
            elastic=ElasticConfig(join_delay=5.0),
        )
        m = eng.run()
        assert m.tasks_completed == 8
        assert m.nodes_joined == 1
        node = eng.runtime.state.nodes["x0"]
        assert node.membership == "alive"
        assert m.as_dict()["nodes_joined"] == 1.0

    def test_join_speeds_up_backlogged_run(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(8)], deadline=1e9)
        baseline = build(cl, [job]).run()
        job2 = Job.from_tasks("J", [mk(f"t{i}") for i in range(8)], deadline=1e9)
        joined = build(
            one_lane(1), [job2],
            membership=[one_lane_event(1.0, "join", "x0")],
            elastic=ElasticConfig(join_delay=1.0),
        ).run()
        assert joined.makespan < baseline.makespan


class TestScriptedDrain:
    def test_drain_decommissions_losslessly(self):
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(9)], deadline=1e9)
        eng = build(
            cl, [job],
            membership=[one_lane_event(3.0, "drain", "n1")],
            elastic=ElasticConfig(drain_step=1.0),
        )
        m = eng.run()
        assert m.tasks_completed == 9
        assert m.nodes_decommissioned == 1
        assert "n1" not in eng.runtime.state.nodes
        # HeuristicScheduler's NullPreemption retains checkpoints and the
        # default interval (0) checkpoints continuously: zero MI lost.
        assert m.drain_migrations >= 1
        assert m.drain_lost_mi == 0.0
        assert m.lost_work_mi == 0.0
        assert m.drain_seconds_total > 0.0

    def test_drain_refused_at_min_nodes(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e9)
        eng = build(
            cl, [job],
            membership=[one_lane_event(3.0, "drain", "n1")],
            elastic=ElasticConfig(min_nodes=2),
        )
        m = eng.run()
        assert m.tasks_completed == 4
        assert m.nodes_decommissioned == 0
        assert "n1" in eng.runtime.state.nodes
        assert eng.runtime.state.nodes["n1"].membership == "alive"

    def test_metrics_disabled_run_has_no_elastic_keys(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e9)
        eng = build(cl, [job])
        m = eng.run()
        assert eng.elastic is None
        assert not any(key.startswith(("nodes_", "drain_", "scale_"))
                       for key in m.as_dict())


class TestMidDrainFault:
    def test_fault_mid_drain_aborts_without_double_count(self):
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(9)], deadline=1e9)
        eng = build(
            cl, [job],
            # drain_step far past the failure: the fault, not a drain
            # step, resolves the DRAINING window.
            membership=[one_lane_event(3.0, "drain", "n1")],
            elastic=ElasticConfig(drain_step=50.0),
            faults=[FaultEvent(4.0, "n1", FaultKind.FAILURE),
                    FaultEvent(30.0, "n1", FaultKind.RECOVERY)],
        )
        m = eng.run()
        assert m.tasks_completed == 9
        assert m.drain_aborts == 1
        assert m.nodes_decommissioned == 0
        assert m.num_node_failures == 1
        # All losses are charged by the fault path; none by the drain.
        assert m.drain_lost_mi == 0.0
        assert "n1" in eng.runtime.state.nodes
        assert eng.runtime.state.nodes["n1"].membership == "alive"


class TestAutoscaler:
    CFG = ElasticConfig(
        autoscale=True, check_period=5.0,
        scale_up_queue_depth=3.0, scale_up_sustain=10.0,
        scale_down_idle_nodes=1, scale_down_sustain=30.0,
        cooldown=20.0, min_nodes=1, max_nodes=4,
        join_delay=5.0, drain_step=2.0,
    )

    def test_scales_up_under_backlog_and_back_down(self):
        cl = one_lane(1)
        job = Job.from_tasks(
            "J", [mk(f"t{i}", 20000.0) for i in range(24)], deadline=1e9
        )
        eng = build(cl, [job], elastic=self.CFG)
        m = eng.run()
        assert m.tasks_completed == 24
        assert m.scale_up_events >= 1
        assert m.nodes_joined == m.scale_up_events
        assert m.scale_down_events >= 1
        # Fleet bounds respected throughout: never above max_nodes.
        assert len(eng.runtime.state.nodes) <= self.CFG.max_nodes

    def test_no_scaling_on_idle_cluster(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk("t0")], deadline=1e9)
        cfg = self.CFG.replace(min_nodes=2, scale_down_sustain=5.0)
        m = build(cl, [job], elastic=cfg).run()
        # min_nodes floors scale-down; one task never builds queue depth.
        assert m.scale_up_events == 0
        assert m.nodes_decommissioned == 0


class TestSnapshotResume:
    def _args(self, tag, tmp_path, crash_at=None):
        cl = one_lane(3)
        job = Job.from_tasks("J", [mk(f"t{i}", 8000.0) for i in range(12)],
                             deadline=1e9)
        membership = [one_lane_event(3.0, "drain", "n1"),
                      one_lane_event(20.0, "join", "x0")]
        kw = dict(
            membership=membership,
            elastic=ElasticConfig(drain_step=4.0),
            journal=tmp_path / f"{tag}.journal",
            snapshots=SnapshotConfig(directory=str(tmp_path / f"{tag}-snaps"),
                                     every_events=10),
        )
        return cl, [job], kw

    def test_mid_drain_crash_resumes_byte_identical(self, tmp_path):
        cl, jobs, kw = self._args("ref", tmp_path)
        ref = build(cl, jobs, **kw).run()

        cl2, jobs2, kw2 = self._args("crash", tmp_path)
        crashing = build(cl2, jobs2, **kw2)
        inject_crash(crashing, 60)
        with pytest.raises(SimulatedCrash):
            crashing.run()

        _, snap = latest_valid_snapshot(tmp_path / "crash-snaps")
        cl3, jobs3, kw3 = self._args("crash", tmp_path)
        kw3.pop("snapshots")
        resumed = SimEngine.restore(
            snap, cl3, jobs3, HeuristicScheduler(cl3),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0,
                                 invariants="strict"),
            **kw3,
        )
        rec = resumed.run()
        assert rec.as_dict() == ref.as_dict()
        assert ((tmp_path / "crash.journal").read_bytes()
                == (tmp_path / "ref.journal").read_bytes())
        assert rec.nodes_decommissioned == 1
        assert rec.nodes_joined == 1


class TestElasticDisabledParity:
    def test_inert_subsystem_is_byte_identical_to_plain(self, tmp_path):
        """An attached-but-inert ElasticSubsystem (empty plan, autoscale
        off) must not perturb the run at all: same journal bytes, same
        metrics as an engine without the subsystem."""
        def leg(tag, elastic):
            cl = one_lane(2)
            job = Job.from_tasks("J", [mk(f"t{i}") for i in range(6)],
                                 deadline=1e9)
            eng = build(cl, [job], elastic=elastic,
                        journal=tmp_path / f"{tag}.journal")
            metrics = eng.run()
            return eng, metrics

        plain_eng, plain = leg("plain", None)
        inert_eng, inert = leg("inert", ElasticConfig())
        assert plain_eng.elastic is None
        assert inert_eng.elastic is not None
        assert inert.as_dict() == plain.as_dict()
        assert ((tmp_path / "inert.journal").read_bytes()
                == (tmp_path / "plain.journal").read_bytes())
