"""Tests for DAG operations (repro.dag.graph)."""

import pytest

from repro.dag import (
    DependencyCycleError,
    Task,
    UnknownParentError,
    build_children_map,
    compute_levels,
    critical_path_length,
    descendants_by_depth,
    enumerate_chains,
    level_partition,
    topological_order,
    validate_acyclic,
)


def mk(tid: str, parents: tuple[str, ...] = ()) -> Task:
    return Task(task_id=tid, job_id="j", size_mi=1.0, parents=parents)


def task_map(*tasks: Task) -> dict[str, Task]:
    return {t.task_id: t for t in tasks}


@pytest.fixture
def diamond():
    return task_map(mk("a"), mk("b", ("a",)), mk("c", ("a",)), mk("d", ("b", "c")))


class TestChildrenMap:
    def test_diamond(self, diamond):
        kids = build_children_map(diamond)
        assert kids["a"] == ("b", "c")
        assert kids["b"] == ("d",)
        assert kids["d"] == ()

    def test_unknown_parent(self):
        with pytest.raises(UnknownParentError):
            build_children_map(task_map(mk("a", ("ghost",))))

    def test_empty(self):
        assert build_children_map({}) == {}


class TestValidateAcyclic:
    def test_accepts_dag(self, diamond):
        validate_acyclic(diamond)  # no raise

    def test_rejects_cycle(self):
        tasks = task_map(mk("a", ("b",)), mk("b", ("a",)))
        with pytest.raises(DependencyCycleError, match="cycle"):
            validate_acyclic(tasks)

    def test_rejects_long_cycle(self):
        tasks = task_map(mk("a", ("c",)), mk("b", ("a",)), mk("c", ("b",)))
        with pytest.raises(DependencyCycleError):
            validate_acyclic(tasks)


class TestTopologicalOrder:
    def test_parents_first(self, diamond):
        order = topological_order(diamond)
        pos = {t: i for i, t in enumerate(order)}
        assert pos["a"] < pos["b"] < pos["d"]
        assert pos["a"] < pos["c"] < pos["d"]

    def test_deterministic_lexicographic(self):
        tasks = task_map(mk("z"), mk("a"), mk("m"))
        assert topological_order(tasks) == ["a", "m", "z"]

    def test_cycle_raises(self):
        tasks = task_map(mk("a", ("b",)), mk("b", ("a",)))
        with pytest.raises(DependencyCycleError):
            topological_order(tasks)


class TestLevels:
    def test_diamond_levels(self, diamond):
        levels = compute_levels(diamond)
        assert levels == {"a": 1, "b": 2, "c": 2, "d": 3}

    def test_level_is_longest_path(self):
        # a -> b -> d, a -> d: d's level is 3 (via b), not 2.
        tasks = task_map(mk("a"), mk("b", ("a",)), mk("d", ("a", "b")))
        assert compute_levels(tasks)["d"] == 3

    def test_partition(self, diamond):
        part = level_partition(diamond)
        assert part == [["a"], ["b", "c"], ["d"]]

    def test_partition_empty(self):
        assert level_partition({}) == []


class TestChains:
    def test_diamond_chains(self, diamond):
        chains = enumerate_chains(diamond)
        assert ("a", "b", "d") in chains
        assert ("a", "c", "d") in chains
        assert len(chains) == 2

    def test_single_task(self):
        assert enumerate_chains(task_map(mk("a"))) == [("a",)]

    def test_max_chains_bound(self, diamond):
        assert len(enumerate_chains(diamond, max_chains=1)) == 1

    def test_chain_of_three(self):
        tasks = task_map(mk("a"), mk("b", ("a",)), mk("c", ("b",)))
        assert enumerate_chains(tasks) == [("a", "b", "c")]


class TestDescendantsByDepth:
    def test_diamond_from_root(self, diamond):
        assert descendants_by_depth(diamond, "a") == [["b", "c"], ["d"]]

    def test_leaf_has_none(self, diamond):
        assert descendants_by_depth(diamond, "d") == []

    def test_unknown_task(self, diamond):
        with pytest.raises(KeyError):
            descendants_by_depth(diamond, "nope")

    def test_shallowest_depth_wins(self):
        # d reachable at depth 1 (a->d) and depth 2 (a->b->d): report depth 1.
        tasks = task_map(mk("a"), mk("b", ("a",)), mk("d", ("a", "b")))
        assert descendants_by_depth(tasks, "a") == [["b", "d"]]


class TestCriticalPath:
    def test_diamond(self, diamond):
        exec_time = {t: 1.0 for t in diamond}
        assert critical_path_length(diamond, exec_time) == pytest.approx(3.0)

    def test_weighted(self, diamond):
        exec_time = {"a": 1.0, "b": 5.0, "c": 1.0, "d": 1.0}
        assert critical_path_length(diamond, exec_time) == pytest.approx(7.0)

    def test_empty(self):
        assert critical_path_length({}, {}) == 0.0

    def test_parallel_roots(self):
        tasks = task_map(mk("a"), mk("b"))
        assert critical_path_length(tasks, {"a": 2.0, "b": 3.0}) == pytest.approx(3.0)
