"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.profile == "cluster"
        assert args.jobs == [15, 30, 45, 60, 75]

    def test_fig5_custom_jobs(self):
        args = build_parser().parse_args(["fig5", "--jobs", "5", "10"])
        assert args.jobs == [5, 10]

    def test_run_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "NOPE"])

    def test_ablate_requires_param(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate"])

    def test_all_subcommands_parse(self):
        p = build_parser()
        for argv in (["fig5"], ["fig6"], ["fig7"], ["fig8"], ["run"],
                     ["ablate", "--param", "rho"]):
            assert p.parse_args(argv) is not None


class TestMain:
    def test_run_command_prints_metrics(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "tasks_completed" in out

    def test_run_with_policy(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "DSP"])
        assert rc == 0
        assert "num_preemptions" in capsys.readouterr().out

    def test_fig5_tiny(self, capsys):
        rc = main(["fig5", "--jobs", "3", "--scale", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Makespan" in out and "DSP" in out and "TetrisW/oDep" in out

    def test_ablate_tiny(self, capsys):
        rc = main(["ablate", "--param", "gamma", "--values", "0.5", "--jobs", "3"])
        assert rc == 0
        assert "Ablation: gamma" in capsys.readouterr().out


class TestExtendedRunFlags:
    def test_run_with_faults(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "DSP",
                   "--mtbf", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "num_node_failures" in out

    def test_run_with_locality_and_analyze(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100",
                   "--locality", "0.5", "--analyze"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total_transfer_time" in out
        assert "fairness" in out

    def test_locality_flag_parse(self):
        args = build_parser().parse_args(["run", "--locality", "0.3"])
        assert args.locality == 0.3
        assert args.mtbf is None


class TestFigureSaving:
    def test_fig5_out_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "fig5.json"
        rc = main(["fig5", "--jobs", "3", "--scale", "100", "--out", str(out)])
        assert rc == 0
        assert "saved:" in capsys.readouterr().out
        from repro.experiments import load_figure

        fig = load_figure(out)
        assert fig.figure == "fig5a"
        assert fig.x == (3,)


class TestGanttFlag:
    def test_run_with_gantt(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t=[" in out  # the chart's time axis header
