"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.profile == "cluster"
        assert args.jobs == [15, 30, 45, 60, 75]

    def test_fig5_custom_jobs(self):
        args = build_parser().parse_args(["fig5", "--jobs", "5", "10"])
        assert args.jobs == [5, 10]

    def test_run_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "NOPE"])

    def test_ablate_requires_param(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablate"])

    def test_all_subcommands_parse(self):
        p = build_parser()
        for argv in (["fig5"], ["fig6"], ["fig7"], ["fig8"], ["run"],
                     ["ablate", "--param", "rho"]):
            assert p.parse_args(argv) is not None


class TestMain:
    def test_run_command_prints_metrics(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "none"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "tasks_completed" in out

    def test_run_with_policy(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "DSP"])
        assert rc == 0
        assert "num_preemptions" in capsys.readouterr().out

    def test_fig5_tiny(self, capsys):
        rc = main(["fig5", "--jobs", "3", "--scale", "100"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Makespan" in out and "DSP" in out and "TetrisW/oDep" in out

    def test_ablate_tiny(self, capsys):
        rc = main(["ablate", "--param", "gamma", "--values", "0.5", "--jobs", "3"])
        assert rc == 0
        assert "Ablation: gamma" in capsys.readouterr().out


class TestExtendedRunFlags:
    def test_run_with_faults(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--policy", "DSP",
                   "--mtbf", "500"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "num_node_failures" in out

    def test_run_with_locality_and_analyze(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100",
                   "--locality", "0.5", "--analyze"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total_transfer_time" in out
        assert "fairness" in out

    def test_locality_flag_parse(self):
        args = build_parser().parse_args(["run", "--locality", "0.3"])
        assert args.locality == 0.3
        assert args.mtbf is None


class TestFigureSaving:
    def test_fig5_out_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "fig5.json"
        rc = main(["fig5", "--jobs", "3", "--scale", "100", "--out", str(out)])
        assert rc == 0
        assert "saved:" in capsys.readouterr().out
        from repro.experiments import load_figure

        fig = load_figure(out)
        assert fig.figure == "fig5a"
        assert fig.x == (3,)


class TestGanttFlag:
    def test_run_with_gantt(self, capsys):
        rc = main(["run", "--jobs", "3", "--scale", "100", "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t=[" in out  # the chart's time axis header


class TestResumeFailurePaths:
    """--resume must fail fast with an actionable message, never a
    traceback and never a silent fresh start."""

    ARGS = ["run", "--jobs", "3", "--scale", "100", "--resume"]

    def test_missing_snapshot_dir(self, capsys, tmp_path):
        rc = main(self.ARGS + ["--snapshot-dir", str(tmp_path / "nope")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "does not exist" in err and "hint:" in err

    def test_empty_snapshot_dir(self, capsys, tmp_path):
        (tmp_path / "snaps").mkdir()
        rc = main(self.ARGS + ["--snapshot-dir", str(tmp_path / "snaps")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "no valid snapshot" in err

    def test_corrupt_snapshot_is_skipped_with_clear_error(self, capsys, tmp_path):
        snaps = tmp_path / "snaps"
        snaps.mkdir()
        (snaps / "snapshot-00000050.json").write_text("{ not json")
        rc = main(self.ARGS + ["--snapshot-dir", str(snaps)])
        assert rc == 1
        assert "no valid snapshot" in capsys.readouterr().err

    def test_fingerprint_mismatch(self, capsys, tmp_path):
        snaps = tmp_path / "snaps"
        rc = main([
            "run", "--jobs", "3", "--scale", "100",
            "--snapshot-every", "20", "--snapshot-dir", str(snaps),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main([
            "run", "--jobs", "4", "--scale", "100", "--resume",
            "--snapshot-dir", str(snaps),
        ])
        assert rc == 1
        err = capsys.readouterr().err
        assert "does not match this run configuration" in err
        assert "hint:" in err


class TestJournalTornTail:
    def test_warning_printed_with_offset(self, capsys, tmp_path):
        journal = tmp_path / "run.journal"
        rc = main([
            "run", "--jobs", "3", "--scale", "100",
            "--journal", str(journal),
        ])
        assert rc == 0
        capsys.readouterr()
        data = journal.read_bytes()
        journal.write_bytes(data[:-5])  # crash mid-append
        rc = main(["journal", str(journal), "--tail", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "torn tail" in out
        assert "offset" in out

    def test_intact_journal_has_no_warning(self, capsys, tmp_path):
        journal = tmp_path / "run.journal"
        main(["run", "--jobs", "3", "--scale", "100", "--journal", str(journal)])
        capsys.readouterr()
        rc = main(["journal", str(journal), "--tail", "2"])
        assert rc == 0
        assert "torn tail" not in capsys.readouterr().out


class TestGracefulInterrupt:
    """SIGTERM/SIGINT stop `repro run` at a settled point, leaving a
    resumable snapshot + flushed journal (tested via the cooperative
    request_stop seam the signal handler uses)."""

    def test_request_stop_raises_interrupted(self):
        from repro.experiments import (
            build_workload_for_cluster,
            cluster_profile,
            default_config,
            make_schedulers,
        )
        from repro.sim import SimEngine, SimulationInterrupted

        cluster = cluster_profile("cluster", 5.0)
        cfg = default_config()
        workload = build_workload_for_cluster(3, cluster, scale=100, seed=7, config=cfg)
        scheduler = make_schedulers(cluster, cfg)["DSP"]
        engine = SimEngine(cluster, list(workload.jobs), scheduler, dsp_config=cfg)
        engine.request_stop()
        with pytest.raises(SimulationInterrupted):
            engine.run()
        # The engine is at a settled point: snapshot-safe.
        snap = engine.snapshot()
        assert snap["kernel"]["pops"] >= 1

    def test_sigterm_mid_run_then_resume(self, capsys, tmp_path):
        import os
        import signal
        import threading

        snaps = tmp_path / "snaps"
        journal = tmp_path / "run.journal"
        base = [
            "run", "--jobs", "40", "--scale", "8", "--snapshot-every", "200",
            "--snapshot-dir", str(snaps), "--journal", str(journal),
        ]
        timer = threading.Timer(
            0.3, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            rc = main(base)
        finally:
            timer.cancel()
        out = capsys.readouterr().out
        if rc == 0:
            pytest.skip("run finished before the signal landed")
        assert rc == 128 + signal.SIGTERM
        assert "SIGTERM" in out and "final snapshot" in out
        rc = main(base + ["--resume"])
        assert rc == 0
        assert "resuming from" in capsys.readouterr().out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.listen.startswith("tcp://")
        assert args.scheduler == "DSP"

    def test_resume_requires_data_dir(self, capsys):
        rc = main(["serve", "--resume"])
        assert rc == 1
        assert "--resume requires --data-dir" in capsys.readouterr().err

    def test_serve_drains_on_sigterm(self, capsys, tmp_path):
        import os
        import signal
        import threading

        timer = threading.Timer(
            1.0, lambda: os.kill(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            rc = main([
                "serve", "--listen", "inproc://cli-serve-test",
                "--data-dir", str(tmp_path / "svc"),
            ])
        finally:
            timer.cancel()
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving on inproc://cli-serve-test" in out
        assert "drained at cycle" in out
        assert (tmp_path / "svc" / "snapshots").is_dir()
