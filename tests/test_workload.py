"""Tests for the workload builder (§V workload reconstruction)."""

import pytest

from repro.dag import MAX_DEPENDENTS, MAX_LEVELS
from repro.trace import (
    TASK_BANDWIDTH_MBPS,
    TASK_DISK_MB,
    GoogleTraceGenerator,
    Workload,
    WorkloadSpec,
    build_workload,
    job_from_records,
)


class TestWorkloadSpec:
    def test_defaults_match_paper_classes(self):
        spec = WorkloadSpec(num_jobs=3, scale=1.0)
        assert spec.medium_tasks == 1000
        assert spec.large_tasks == 2000
        assert spec.arrival_rate_range == (2.0, 5.0)

    def test_scaled_class_sizes(self):
        spec = WorkloadSpec(num_jobs=3, scale=20.0)
        small, medium, large = spec.scaled_class_sizes()
        assert (small, medium, large) == (15, 50, 100)

    def test_scaled_minimum_two(self):
        spec = WorkloadSpec(num_jobs=3, scale=10_000.0)
        assert spec.scaled_class_sizes() == (2, 2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=0)
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=1, deadline_slack=0.5)
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=1, arrival_rate_range=(5.0, 2.0))
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=1, arrival_rate_range=(0.0, 2.0))


class TestJobFromRecords:
    def test_sizes_from_durations(self):
        records = GoogleTraceGenerator(rng=0).job_records("J", 5)
        job = job_from_records("J", records, 0.0, 4.0, reference_rate_mips=1000.0)
        for rec in records:
            task = job.tasks[f"J.T{rec.task_index:04d}"]
            assert task.size_mi == pytest.approx(rec.duration * 1000.0)

    def test_demands_scaled_by_reference_node(self):
        records = GoogleTraceGenerator(rng=0).job_records("J", 5)
        job = job_from_records(
            "J", records, 0.0, 4.0, 1000.0,
            reference_node_cpu=4.0, reference_node_mem=8.0,
        )
        for rec in records:
            task = job.tasks[f"J.T{rec.task_index:04d}"]
            assert task.demand.cpu == pytest.approx(rec.cpu * 4.0)
            assert task.demand.mem == pytest.approx(rec.mem * 8.0)
            assert task.demand.disk == TASK_DISK_MB
            assert task.demand.bandwidth == TASK_BANDWIDTH_MBPS

    def test_deadline_is_slack_times_critical_path(self):
        records = GoogleTraceGenerator(rng=0).job_records("J", 10)
        job = job_from_records("J", records, arrival_time=100.0,
                               deadline_slack=3.0, reference_rate_mips=1000.0)
        cp = job.critical_path_time(1000.0)
        assert job.deadline == pytest.approx(100.0 + 3.0 * cp)

    def test_structural_caps(self):
        records = GoogleTraceGenerator(rng=5).job_records("J", 80)
        job = job_from_records("J", records, 0.0, 4.0, 1000.0)
        assert job.depth <= MAX_LEVELS
        assert all(len(k) <= MAX_DEPENDENTS for k in job.children.values())


class TestBuildWorkload:
    @pytest.fixture
    def workload(self) -> Workload:
        return build_workload(WorkloadSpec(num_jobs=9, scale=50.0), rng=42)

    def test_job_count(self, workload):
        assert len(workload.jobs) == 9

    def test_equal_class_mix(self, workload):
        small, medium, large = workload.spec.scaled_class_sizes()
        sizes = [j.num_tasks for j in workload.jobs]
        assert sizes.count(small) == 3
        assert sizes.count(medium) == 3
        assert sizes.count(large) == 3

    def test_arrivals_monotone(self, workload):
        arrivals = [j.arrival_time for j in workload.by_arrival()]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_production_flags_alternate(self, workload):
        weights = [workload.job(f"J{i:04d}").weight for i in range(9)]
        assert weights == [1.0, 0.0] * 4 + [1.0]

    def test_deterministic(self):
        a = build_workload(WorkloadSpec(num_jobs=5, scale=50.0), rng=3)
        b = build_workload(WorkloadSpec(num_jobs=5, scale=50.0), rng=3)
        assert [j.deadline for j in a.jobs] == [j.deadline for j in b.jobs]
        assert a.num_tasks == b.num_tasks

    def test_num_tasks(self, workload):
        assert workload.num_tasks == sum(j.num_tasks for j in workload.jobs)

    def test_all_tasks_flat_map(self, workload):
        flat = workload.all_tasks()
        assert len(flat) == workload.num_tasks
        for tid, task in flat.items():
            assert tid == task.task_id

    def test_job_lookup_missing(self, workload):
        with pytest.raises(KeyError):
            workload.job("nope")

    def test_arrival_rate_within_range(self):
        # Mean inter-arrival must correspond to 2..5 jobs/min, loosely.
        w = build_workload(WorkloadSpec(num_jobs=60, scale=200.0), rng=0)
        arrivals = sorted(j.arrival_time for j in w.jobs)
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert 5.0 < mean_gap < 60.0  # 1..12 jobs/min, generous bounds


class TestArrivalPatterns:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="arrival_pattern"):
            WorkloadSpec(num_jobs=1, arrival_pattern="weekly")

    def test_amplitude_bounds(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_jobs=1, arrival_pattern="diurnal", diurnal_amplitude=1.0)

    def test_diurnal_builds(self):
        spec = WorkloadSpec(
            num_jobs=12, scale=200.0, arrival_pattern="diurnal",
            diurnal_period=600.0, diurnal_amplitude=0.9,
        )
        w = build_workload(spec, rng=3)
        arrivals = [j.arrival_time for j in w.by_arrival()]
        assert arrivals == sorted(arrivals)
        assert len(w.jobs) == 12

    def test_diurnal_rate_varies_more_than_poisson(self):
        # The diurnal pattern should produce burstier gaps: higher
        # coefficient of variation than the plain Poisson process.
        import numpy as np

        def gaps(pattern):
            spec = WorkloadSpec(
                num_jobs=400, scale=1000.0, arrival_pattern=pattern,
                diurnal_period=300.0, diurnal_amplitude=0.9,
            )
            w = build_workload(spec, rng=11)
            arr = sorted(j.arrival_time for j in w.jobs)
            return np.diff(arr)

        cv_poisson = gaps("poisson").std() / gaps("poisson").mean()
        cv_diurnal = gaps("diurnal").std() / gaps("diurnal").mean()
        assert cv_diurnal > cv_poisson
