"""Tests for §V dependency inference from execution windows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace import GoogleTraceGenerator, TraceTaskRecord, infer_dependencies


def rec(idx: int, start: float, end: float, job: str = "j") -> TraceTaskRecord:
    return TraceTaskRecord(job, idx, start, end, 0.5, 0.5)


class TestNoOverlapRule:
    def test_sequential_tasks_linked(self):
        parents = infer_dependencies([rec(0, 0, 10), rec(1, 10, 20)])
        assert parents[1] == (0,)

    def test_overlapping_tasks_not_linked(self):
        parents = infer_dependencies([rec(0, 0, 10), rec(1, 5, 20)])
        assert parents[1] == ()

    def test_first_task_is_root(self):
        parents = infer_dependencies([rec(0, 0, 10), rec(1, 20, 30)])
        assert parents[0] == ()

    def test_most_recent_enders_preferred(self):
        # Task 3 starts at 100; tasks 0 (ends 10), 1 (ends 50), 2 (ends 90).
        records = [rec(0, 0, 10), rec(1, 20, 50), rec(2, 60, 90), rec(3, 100, 110)]
        parents = infer_dependencies(records, max_parents=2)
        assert parents[3] == (1, 2)  # the two most recent enders

    def test_max_parents_cap(self):
        records = [rec(i, i * 10.0, i * 10.0 + 5.0) for i in range(6)]
        parents = infer_dependencies(records, max_parents=2)
        assert all(len(p) <= 2 for p in parents.values())


class TestStructuralCaps:
    def test_level_cap(self):
        # A long strictly sequential job would produce a chain; the level
        # cap must keep depth <= max_levels.
        records = [rec(i, i * 10.0, i * 10.0 + 5.0) for i in range(20)]
        parents = infer_dependencies(records, max_levels=5, max_parents=1)
        level = {}
        for idx in sorted(parents):
            ps = parents[idx]
            level[idx] = 1 + max((level[p] for p in ps), default=0)
        assert max(level.values()) <= 5

    def test_dependents_cap(self):
        # One early task, many later tasks that would all link to it.
        records = [rec(0, 0, 1)] + [rec(i, 10 + i, 12 + i) for i in range(1, 30)]
        parents = infer_dependencies(records, max_dependents=3)
        count0 = sum(1 for ps in parents.values() if 0 in ps)
        assert count0 <= 3

    def test_acyclic_by_construction(self):
        records = GoogleTraceGenerator(rng=3).job_records("j", 60)
        parents = infer_dependencies(records)
        by_idx = {r.task_index: r for r in records}
        for child, ps in parents.items():
            for p in ps:
                assert by_idx[p].end_time <= by_idx[child].start_time


class TestValidation:
    def test_empty(self):
        assert infer_dependencies([]) == {}

    def test_mixed_jobs_rejected(self):
        with pytest.raises(ValueError, match="one job"):
            infer_dependencies([rec(0, 0, 1, job="a"), rec(1, 2, 3, job="b")])

    def test_bad_caps_rejected(self):
        with pytest.raises(ValueError):
            infer_dependencies([rec(0, 0, 1)], max_levels=0)
        with pytest.raises(ValueError):
            infer_dependencies([rec(0, 0, 1)], max_parents=0)
        with pytest.raises(ValueError):
            infer_dependencies([rec(0, 0, 1)], max_dependents=-1)

    def test_deterministic(self):
        records = GoogleTraceGenerator(rng=9).job_records("j", 40)
        assert infer_dependencies(records) == infer_dependencies(records)


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=1, max_value=60),
    )
    def test_invariants_on_random_traces(self, seed, n):
        records = GoogleTraceGenerator(rng=seed).job_records("j", n)
        parents = infer_dependencies(records)
        assert set(parents) == {r.task_index for r in records}
        # Caps hold.
        child_count: dict[int, int] = {}
        level: dict[int, int] = {}
        by_idx = {r.task_index: r for r in records}
        for idx in sorted(parents, key=lambda i: (by_idx[i].start_time, i)):
            ps = parents[idx]
            level[idx] = 1 + max((level[p] for p in ps), default=0)
            for p in ps:
                child_count[p] = child_count.get(p, 0) + 1
                # §V rule: a parent's window strictly precedes the child's.
                assert by_idx[p].end_time <= by_idx[idx].start_time
        assert max(level.values(), default=1) <= 5
        assert max(child_count.values(), default=0) <= 15
