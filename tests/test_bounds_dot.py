"""Tests for makespan lower bounds and DOT export."""

import pytest

from repro.cluster import uniform_cluster
from repro.dag import Job, chain_dag, diamond_dag, job_to_dot, write_dot
from repro.experiments import (
    capacity_bound,
    critical_path_bound,
    dimension_bound,
    makespan_lower_bound,
)


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestBounds:
    def test_critical_path_bound_chain(self, cluster):
        # Chain of 4 x 1000 MI at 1000 MIPS: cannot beat 4 s.
        job = Job.from_tasks("J", chain_dag("J", 4, size_mi=1000.0), deadline=1e9)
        assert critical_path_bound([job], cluster) == pytest.approx(4.0)

    def test_capacity_bound(self, cluster):
        # 8000 MI; each node (cpu 4, mem 4) fits 4 unit-demand tasks, each
        # at 1000 MIPS -> max throughput 8000 MI/s -> bound 1 s.
        job = Job.from_tasks("J", chain_dag("J", 8, size_mi=1000.0), deadline=1e9)
        assert capacity_bound([job], cluster) == pytest.approx(1.0)

    def test_capacity_bound_single_slot(self):
        # Nodes that fit exactly one task: throughput = sum of g(k).
        from repro.cluster import Cluster, NodeSpec

        cl = Cluster([
            NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=0.5, mips_per_unit=1333.33)
            for i in range(2)
        ])  # g(k) = 1000 MIPS, capacity fits one default-demand task
        job = Job.from_tasks("J", chain_dag("J", 8, size_mi=1000.0), deadline=1e9)
        assert capacity_bound([job], cl) == pytest.approx(4.0, rel=1e-3)

    def test_dimension_bound_positive(self, cluster):
        job = Job.from_tasks("J", diamond_dag("J"), deadline=1e9)
        assert dimension_bound([job], cluster) > 0.0

    def test_lower_bound_is_max(self, cluster):
        job = Job.from_tasks("J", chain_dag("J", 4, size_mi=1000.0), deadline=1e9)
        lb = makespan_lower_bound([job], cluster)
        assert lb >= critical_path_bound([job], cluster)
        assert lb >= capacity_bound([job], cluster)

    def test_empty(self, cluster):
        assert critical_path_bound([], cluster) == 0.0
        assert dimension_bound([], cluster) == 0.0

    def test_arrivals_shift_bound(self, cluster):
        from repro.dag import Task

        t = Task(task_id="K.a", job_id="K", size_mi=1000.0)
        late = Job(job_id="K", tasks={"K.a": t}, deadline=1e9, arrival_time=100.0)
        early = Job.from_tasks("J", chain_dag("J", 1, size_mi=1000.0), deadline=1e9)
        # The late job's chain can only start at t=100.
        assert critical_path_bound([early, late], cluster) >= 100.0

    def test_simulated_run_respects_bound(self, cluster):
        from repro.config import SimConfig
        from repro.core import HeuristicScheduler
        from repro.sim import SimEngine

        job = Job.from_tasks("J", diamond_dag("J", size_mi=2000.0), deadline=1e9)
        engine = SimEngine(
            cluster, [job], HeuristicScheduler(cluster),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        )
        m = engine.run()
        assert m.makespan >= makespan_lower_bound([job], cluster) - 1e-9


class TestDotExport:
    def test_structure(self):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        dot = job_to_dot(job)
        assert dot.startswith('digraph "J1"')
        assert '"J1.T0000" -> "J1.T0001"' in dot
        assert "rank=same" in dot  # the two middle tasks share a level
        assert dot.rstrip().endswith("}")

    def test_sizes_toggle(self):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        assert "MI" in job_to_dot(job, include_sizes=True)
        assert "MI" not in job_to_dot(job, include_sizes=False)

    def test_rankdir_validation(self):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        with pytest.raises(ValueError):
            job_to_dot(job, rankdir="XX")

    def test_input_marking(self):
        from repro.cluster import ResourceVector
        from repro.dag import Task

        t = Task(task_id="K.a", job_id="K", size_mi=1.0,
                 demand=ResourceVector(cpu=1.0),
                 input_mb=10.0, input_location="n0")
        job = Job(job_id="K", tasks={"K.a": t}, deadline=1e9)
        assert "peripheries=2" in job_to_dot(job)

    def test_write(self, tmp_path):
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        path = write_dot(job, tmp_path / "j.dot")
        assert path.read_text().startswith("digraph")
