"""Tests for fault injection: plan model, validation, engine behaviour."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    FaultEvent,
    FaultKind,
    SimEngine,
    random_fault_plan,
    validate_fault_plan,
)


def mk(tid: str, size=5000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5))


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def run(cluster, jobs, faults, **kw):
    eng = SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        faults=faults, **kw,
    )
    return eng.run()


class TestFaultEvent:
    def test_valid(self):
        FaultEvent(1.0, "n0", FaultKind.FAILURE)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "n0", FaultKind.FAILURE)

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "", FaultKind.FAILURE)

    @pytest.mark.parametrize("factor", [0.0, 1.0, 1.5])
    def test_slowdown_factor_bounds(self, factor):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "n0", FaultKind.SLOWDOWN, factor=factor)


class TestValidatePlan:
    def test_good_plan(self):
        cl = one_lane(2)
        plan = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(5.0, "n0", FaultKind.RECOVERY),
            FaultEvent(2.0, "n1", FaultKind.SLOWDOWN, 0.5),
            FaultEvent(4.0, "n1", FaultKind.RESTORE),
        ]
        assert validate_fault_plan(plan, cl) == []

    def test_unknown_node(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "ghost", FaultKind.FAILURE)]
        assert any("unknown node" in p for p in validate_fault_plan(plan, cl))

    def test_double_failure(self):
        cl = one_lane(1)
        plan = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n0", FaultKind.FAILURE),
        ]
        assert any("fails while down" in p for p in validate_fault_plan(plan, cl))

    def test_restore_without_slowdown(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.RESTORE)]
        assert validate_fault_plan(plan, cl) != []


class TestRandomPlan:
    def test_deterministic(self):
        cl = one_lane(3)
        a = random_fault_plan(cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0)
        b = random_fault_plan(cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0)
        assert a == b

    def test_validates(self):
        cl = one_lane(4)
        plan = random_fault_plan(
            cl, 20_000.0, rng=9, mtbf=3000.0, mttr=200.0,
            straggler_rate=0.5,
        )
        assert validate_fault_plan(plan, cl) == []

    def test_within_horizon(self):
        cl = one_lane(2)
        plan = random_fault_plan(cl, 5000.0, rng=1, mtbf=800.0, mttr=100.0)
        assert all(ev.time < 5000.0 for ev in plan)


class TestEngineFaultHandling:
    def test_failure_reassigns_and_completes(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 4
        assert m.num_node_failures == 1
        assert m.num_task_reassignments >= 1

    def test_failure_loses_in_flight_progress(self):
        # One node fails mid-task; a second node carries on.  The failed
        # task must rerun, so the makespan exceeds the fault-free run.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                  FaultEvent(50.0, "n0", FaultKind.RECOVERY)]
        faulty = run(cl, [job], faults)
        clean = run(cl, [job], None)
        assert faulty.makespan > clean.makespan

    def test_all_nodes_down_parks_until_recovery(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=1000.0)], deadline=1e6)
        faults = [FaultEvent(0.5, "n0", FaultKind.FAILURE),
                  FaultEvent(30.0, "n0", FaultKind.RECOVERY)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 1
        assert m.makespan >= 30.0  # could not finish before the recovery

    def test_straggler_slows_completion(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)  # 10 s
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.5),
                  FaultEvent(1e5, "n0", FaultKind.RESTORE)]
        m = run(cl, [job], faults)
        # 2 s at full rate (1000 MI) + 4000 MI at 250 MIPS = 2 + 16 = 18 s.
        assert m.makespan == pytest.approx(18.0, abs=0.1)

    def test_restore_speeds_back_up(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.5),
                  FaultEvent(6.0, "n0", FaultKind.RESTORE)]
        m = run(cl, [job], faults)
        # 2 s full (1000 MI) + 4 s half (1000 MI) + 3000 MI full (6 s) = 12 s.
        assert m.makespan == pytest.approx(12.0, abs=0.1)

    def test_invalid_plan_rejected_at_construction(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0")], deadline=1e6)
        with pytest.raises(ValueError, match="invalid fault plan"):
            SimEngine(
                cl, [job], HeuristicScheduler(cl),
                faults=[FaultEvent(1.0, "ghost", FaultKind.FAILURE)],
            )

    def test_failures_not_counted_as_preemptions(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE)]
        m = run(cl, [job], faults)
        assert m.num_preemptions == 0


class TestRandomPlanTaskFail:
    def test_task_fail_rate_generates_events(self):
        cl = one_lane(3)
        plan = random_fault_plan(
            cl, 20_000.0, rng=7, mtbf=2000.0, mttr=100.0, task_fail_rate=2.0,
        )
        kinds = {ev.kind for ev in plan}
        assert FaultKind.TASK_FAIL in kinds
        assert validate_fault_plan(plan, cl) == []

    def test_task_fail_rate_zero_is_default(self):
        cl = one_lane(3)
        a = random_fault_plan(cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0)
        b = random_fault_plan(
            cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0, task_fail_rate=0.0,
        )
        assert a == b
        assert all(ev.kind is not FaultKind.TASK_FAIL for ev in a)

    def test_task_fail_on_down_node_rejected(self):
        cl = one_lane(1)
        plan = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n0", FaultKind.TASK_FAIL),
        ]
        assert any("down node" in p for p in validate_fault_plan(plan, cl))

    def test_bad_knobs_raise_runtime_error_not_assert(self):
        # The terminal self-check raises RuntimeError (never a bare assert,
        # which -O would strip).
        cl = one_lane(2)
        with pytest.raises((ValueError, RuntimeError)):
            random_fault_plan(cl, 10_000.0, rng=1, mtbf=-5.0, mttr=100.0)


class TestFaultAccounting:
    def test_fault_counts_and_lost_work_exposed(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.TASK_FAIL)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 4
        assert m.num_task_failures == 1
        assert m.lost_work_mi > 0.0
        assert m.fault_counts == {"task_fail": 1}
        d = m.as_dict()
        assert d["num_task_failures"] == 1
        assert d["lost_work_mi"] == pytest.approx(m.lost_work_mi)
        assert d["faults_task_fail"] == 1

    def test_node_failure_lost_work_in_as_dict(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                  FaultEvent(15.0, "n0", FaultKind.RECOVERY)]
        m = run(cl, [job], faults)
        d = m.as_dict()
        assert d["faults_failure"] == 1
        assert d["faults_recovery"] == 1
        assert "lost_work_mi" in d


class TestFaultEdgeCases:
    def test_failure_while_all_nodes_down_drains_on_recovery(self):
        # n0 dies, its backlog moves to n1; then n1 dies too with no alive
        # node to take the parked tasks.  When only n0 recovers, the
        # backlog stranded on the still-dead n1 must drain onto n0.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}", size=2000.0) for i in range(4)],
                             deadline=1e6)
        faults = [FaultEvent(1.0, "n0", FaultKind.FAILURE),
                  FaultEvent(2.0, "n1", FaultKind.FAILURE),
                  FaultEvent(30.0, "n0", FaultKind.RECOVERY)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 4
        assert m.makespan >= 30.0

    def test_slowdown_on_empty_queue_node_is_noop(self):
        # n1 is too small to ever host the task, so it sits with an empty
        # queue; slowing it down must not disturb the run.
        cl = Cluster([
            NodeSpec(node_id="n0", cpu_size=1.0, mem_size=1.0,
                     mips_per_unit=500.0),
            NodeSpec(node_id="n1", cpu_size=0.5, mem_size=0.25,
                     mips_per_unit=500.0),
        ])
        job = Job.from_tasks("J", [mk("t0", size=2000.0)], deadline=1e6)
        faults = [FaultEvent(0.5, "n1", FaultKind.SLOWDOWN, factor=0.5),
                  FaultEvent(2.0, "n1", FaultKind.RESTORE)]
        faulty = run(cl, [job], faults)
        clean = run(cl, [job], None)
        assert faulty.tasks_completed == 1
        assert faulty.makespan == pytest.approx(clean.makespan, abs=1e-6)

    def test_failure_mid_stall_requeues_task(self):
        # Dependency-unaware dispatch stalls the child on the node while
        # its slowed parent drags on; the node then fails mid-stall.  The
        # stalled child must be re-queued and eventually complete, not
        # leak its slot.
        cl = Cluster([NodeSpec(node_id="n0", cpu_size=2.0, mem_size=2.0,
                               mips_per_unit=500.0)])
        parent = mk("t0", size=5000.0)                     # 10 s clean
        child = Task(task_id="t1", job_id="J", size_mi=1000.0,
                     demand=ResourceVector(cpu=1.0, mem=0.5),
                     parents=("t0",))
        job = Job.from_tasks("J", [parent, child], deadline=1e6)
        faults = [FaultEvent(1.0, "n0", FaultKind.SLOWDOWN, factor=0.1),
                  FaultEvent(15.0, "n0", FaultKind.FAILURE),
                  FaultEvent(30.0, "n0", FaultKind.RECOVERY)]
        m = run(cl, [job], faults, dependency_aware_dispatch=False)
        assert m.tasks_completed == 2
        assert m.num_disorders >= 1     # the child did stall
        assert m.makespan > 30.0        # and finished after the recovery


class TestSameTimestampTiebreak:
    """Regression: a plan with a RECOVERY and a FAILURE at the same
    instant on the same node used to validate or fail depending on input
    order.  :func:`fault_sort_key` now ranks restorative kinds before
    degrading ones at equal timestamps, so the instantaneous
    down -> up -> down sequence is unambiguous."""

    BOUNCE = [
        FaultEvent(1.0, "n0", FaultKind.FAILURE),
        FaultEvent(5.0, "n0", FaultKind.RECOVERY),
        FaultEvent(5.0, "n0", FaultKind.FAILURE),   # re-fails at the instant
        FaultEvent(9.0, "n0", FaultKind.RECOVERY),  # it recovers
    ]

    def test_validates_in_any_input_order(self):
        from repro.sim import fault_sort_key

        cl = one_lane(2)
        assert validate_fault_plan(self.BOUNCE, cl) == []
        assert validate_fault_plan(list(reversed(self.BOUNCE)), cl) == []
        ordered = sorted(reversed(self.BOUNCE), key=fault_sort_key)
        assert [ev.kind for ev in ordered] == [
            FaultKind.FAILURE, FaultKind.RECOVERY,
            FaultKind.FAILURE, FaultKind.RECOVERY,
        ]

    def test_restorative_ranked_before_degrading(self):
        from repro.sim import fault_sort_key

        same_time = [
            FaultEvent(3.0, "n0", FaultKind.TASK_FAIL),
            FaultEvent(3.0, "n0", FaultKind.FAILURE),
            FaultEvent(3.0, "n0", FaultKind.PARTITION),
            FaultEvent(3.0, "n0", FaultKind.HEAL),
            FaultEvent(3.0, "n0", FaultKind.RECOVERY),
        ]
        ordered = sorted(same_time, key=fault_sort_key)
        assert [ev.kind for ev in ordered] == [
            FaultKind.RECOVERY, FaultKind.HEAL, FaultKind.PARTITION,
            FaultKind.FAILURE, FaultKind.TASK_FAIL,
        ]

    def test_random_plan_emits_sorted_output(self):
        from repro.sim import fault_sort_key

        cl = one_lane(3)
        plan = random_fault_plan(cl, 20_000.0, rng=2, mtbf=1500.0, mttr=200.0,
                                 task_fail_rate=1.0)
        assert plan == sorted(plan, key=fault_sort_key)


class TestPartitionValidation:
    def test_good_partition_plan(self):
        cl = one_lane(2)
        plan = [FaultEvent(1.0, "n0", FaultKind.PARTITION),
                FaultEvent(5.0, "n0", FaultKind.HEAL)]
        assert validate_fault_plan(plan, cl) == []

    def test_heal_without_partition_rejected(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.HEAL)]
        assert validate_fault_plan(plan, cl) != []

    def test_double_partition_rejected(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.PARTITION),
                FaultEvent(2.0, "n0", FaultKind.PARTITION)]
        assert validate_fault_plan(plan, cl) != []

    def test_task_fail_while_partitioned_rejected(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.PARTITION),
                FaultEvent(2.0, "n0", FaultKind.TASK_FAIL)]
        assert validate_fault_plan(plan, cl) != []

    def test_failure_consumes_partition(self):
        # A partitioned node may crash outright; RECOVERY (not HEAL)
        # then brings it back.
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.PARTITION),
                FaultEvent(2.0, "n0", FaultKind.FAILURE),
                FaultEvent(5.0, "n0", FaultKind.RECOVERY)]
        assert validate_fault_plan(plan, cl) == []


class TestEnginePartition:
    def test_partition_pauses_and_heal_resumes_exactly(self):
        # 5000 MI at 500 MIPS = 10 s of work; unreachable during [2, 5]
        # contributes nothing, so the task finishes at exactly 13 s.
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.PARTITION),
                  FaultEvent(5.0, "n0", FaultKind.HEAL)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 1
        assert m.makespan == pytest.approx(13.0, abs=1e-6)
        assert m.fault_counts.get("partition") == 1
        assert m.fault_counts.get("heal") == 1

    def test_partition_is_not_a_failure(self):
        # Unlike a crash, a partition loses no in-flight work and counts
        # no node failure or reassignment.
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.PARTITION),
                  FaultEvent(5.0, "n0", FaultKind.HEAL)]
        m = run(cl, [job], faults)
        assert m.num_node_failures == 0
        assert m.num_task_reassignments == 0
        assert m.lost_work_mi == 0.0

    def test_no_dispatch_while_partitioned(self):
        # Two sequential tasks on one node; the partition opens after the
        # first finishes, so the second may only start at the heal.
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=1000.0),   # 2 s
                                   mk("t1", size=1000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.PARTITION),
                  FaultEvent(10.0, "n0", FaultKind.HEAL)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 2
        assert m.makespan == pytest.approx(12.0, abs=1e-6)


class TestSnapshotRestoreUnderFaults:
    """Resume-under-chaos parity: a snapshot taken *inside* an open fault
    window must carry the window across the round trip — the restored run
    keeps the paused/stalled clock exclusions and lands on the same
    metrics and journal bytes as the uninterrupted run."""

    @staticmethod
    def _durable(root, every=1):
        from repro.config import SnapshotConfig
        return dict(
            journal=root / "run.journal",
            snapshots=SnapshotConfig(
                directory=str(root / "snaps"), every_events=every, keep=10_000
            ),
        )

    def test_restore_inside_open_partition_window(self, tmp_path):
        from repro.dag.task import TaskState
        from repro.sim import SimEngine, load_snapshot

        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.PARTITION),
                  FaultEvent(5.0, "n0", FaultKind.HEAL)]
        sim = SimConfig(epoch=1.0, scheduling_period=10.0)

        def build(root):
            return SimEngine(cl, [job], HeuristicScheduler(cl), sim_config=sim,
                             faults=faults, **self._durable(root))

        ref_root = tmp_path / "ref"
        reference = build(ref_root)
        ref_metrics = reference.run().as_dict()
        ref_journal = (ref_root / "run.journal").read_bytes()
        assert ref_metrics["makespan"] == pytest.approx(13.0, abs=1e-6)

        # Pick a snapshot taken while the partition is open.
        inside = [
            data
            for p in sorted((ref_root / "snaps").iterdir())
            for data in [load_snapshot(p)]
            if data["nodes"]["n0"]["partitioned"]
        ]
        assert inside, "no snapshot landed inside the partition window"
        data = inside[len(inside) // 2]

        work = tmp_path / "work"
        work.mkdir()
        (work / "run.journal").write_bytes(ref_journal)
        resumed = SimEngine.restore(
            data, cl, [job], HeuristicScheduler(cl), sim_config=sim,
            faults=faults, **self._durable(work),
        )
        # The open window survived the round trip.
        node = resumed.runtime.state.nodes["n0"]
        assert node.partitioned and node.partitioned_at == pytest.approx(2.0)
        task = resumed.runtime.state.tasks["t0"]
        assert task.state is TaskState.RUNNING
        # The paused-clock exclusion survives: the run still completes at
        # exactly 13 s (10 s of work + the 3 s unreachable window), with
        # metrics and journal bytes identical to the uninterrupted run.
        assert resumed.run().as_dict() == ref_metrics
        assert (work / "run.journal").read_bytes() == ref_journal

    def test_restore_mid_stall_keeps_stall_clock(self, tmp_path):
        from repro.dag.task import TaskState
        from repro.sim import SimEngine, load_snapshot

        cl = Cluster([NodeSpec(node_id="n0", cpu_size=2.0, mem_size=2.0,
                               mips_per_unit=500.0)])
        parent = mk("t0", size=5000.0)                      # 10 s clean
        child = Task(task_id="t1", job_id="J", size_mi=1000.0,
                     demand=ResourceVector(cpu=1.0, mem=0.5),
                     parents=("t0",))
        job = Job.from_tasks("J", [parent, child], deadline=1e6)
        faults = [FaultEvent(1.0, "n0", FaultKind.SLOWDOWN, factor=0.1),
                  FaultEvent(40.0, "n0", FaultKind.RESTORE)]
        sim = SimConfig(epoch=1.0, scheduling_period=10.0)

        def build(root):
            return SimEngine(cl, [job], HeuristicScheduler(cl), sim_config=sim,
                             faults=faults, dependency_aware_dispatch=False,
                             **self._durable(root))

        ref_root = tmp_path / "ref"
        reference = build(ref_root)
        ref_metrics = reference.run().as_dict()
        ref_journal = (ref_root / "run.journal").read_bytes()
        assert ref_metrics["num_disorders"] >= 1
        assert ref_metrics["total_stalled_time"] > 0

        # Pick a snapshot taken while the child is stalled on the node.
        stalled = [
            data
            for p in sorted((ref_root / "snaps").iterdir())
            for data in [load_snapshot(p)]
            if data["tasks"]["t1"]["state"] == "stalled"
        ]
        assert stalled, "no snapshot landed mid-stall"
        data = stalled[len(stalled) // 2]

        work = tmp_path / "work"
        work.mkdir()
        (work / "run.journal").write_bytes(ref_journal)
        resumed = SimEngine.restore(
            data, cl, [job], HeuristicScheduler(cl), sim_config=sim,
            faults=faults, dependency_aware_dispatch=False,
            **self._durable(work),
        )
        task = resumed.runtime.state.tasks["t1"]
        assert task.state is TaskState.STALLED
        assert task.stall_start is not None  # the stall clock survived
        assert resumed.run().as_dict() == ref_metrics
        assert (work / "run.journal").read_bytes() == ref_journal


class TestRecoveryWhilePartitioned:
    """Regression for the RECOVERY × PARTITION race: composed chaos draws
    its streams independently, so a partition can land in the same
    instant a node crashes and outlive the crash — the later RECOVERY
    then arrives while the partition window is still open.  The revived
    node must come back *alive but unreachable*: dispatch-gated and
    handed no backlog until its HEAL.

    The plan validator (rightly) refuses to script this ordering, so the
    tests open the window from a ``NodeFailed`` subscriber — the handler
    runs at the instant of the crash, which is exactly where the race
    lives.
    """

    @staticmethod
    def _engine(num_tasks, faults):
        from repro.sim import NodeFailed

        cl = one_lane(2)
        job = Job.from_tasks(
            "J", [mk(f"t{i}", size=2000.0) for i in range(num_tasks)],
            deadline=1e6,
        )
        eng = SimEngine(
            cl, [job], HeuristicScheduler(cl),
            sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
            faults=faults,
        )
        rt = eng.runtime

        def _open_partition(ev):
            if ev.node_id == "n0":
                node = rt.state.nodes["n0"]
                node.partitioned = True
                node.partitioned_at = ev.time

        rt.bus.subscribe(NodeFailed, _open_partition)
        return eng

    def test_recovery_does_not_reopen_dispatch(self):
        # No HEAL ever arrives: the recovered node must stay gated for
        # the rest of the run while the healthy node absorbs everything.
        from repro.sim import TaskStarted

        eng = self._engine(6, [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                               FaultEvent(6.0, "n0", FaultKind.RECOVERY)])
        starts: list[tuple[float, str]] = []
        eng.runtime.bus.subscribe(
            TaskStarted, lambda ev: starts.append((ev.time, ev.node_id))
        )
        m = eng.run()
        node = eng.runtime.state.nodes["n0"]
        assert m.tasks_completed == 6
        assert node.alive and node.partitioned and not node.available
        # Every start on n0 predates the crash; the recovery at t=6
        # reopened nothing.
        assert all(t < 3.0 for t, nid in starts if nid == "n0")
        assert any(nid == "n1" for _, nid in starts)

    def test_heal_reopens_dispatch(self):
        # n1 crashes while n0 sits recovered-but-unreachable, so the
        # whole backlog lands on n0's gated queue; a HEAL injected at
        # that instant is the only thing that lets work start again.
        from repro.sim import NodeFailed, TaskStarted

        eng = self._engine(6, [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                               FaultEvent(6.0, "n0", FaultKind.RECOVERY),
                               FaultEvent(9.0, "n1", FaultKind.FAILURE)])
        rt = eng.runtime
        starts: list[tuple[float, str]] = []
        rt.bus.subscribe(
            TaskStarted, lambda ev: starts.append((ev.time, ev.node_id))
        )

        def _heal_on_n1_crash(ev):
            if ev.node_id == "n1":
                rt.state.pending_faults += 1
                rt.faults.on_fault(FaultEvent(ev.time, "n0", FaultKind.HEAL))

        rt.bus.subscribe(NodeFailed, _heal_on_n1_crash)
        m = eng.run()
        node = rt.state.nodes["n0"]
        assert m.tasks_completed == 6
        assert not node.partitioned and node.available
        # n0 starts split cleanly around the window: before its crash at
        # t=3 or at/after the heal at t=9, never inside the window.
        n0_starts = [t for t, nid in starts if nid == "n0"]
        assert any(t >= 9.0 for t in n0_starts)
        assert not [t for t in n0_starts if 3.0 <= t < 9.0]
        assert m.makespan > 9.0

    def test_heal_drains_backlog_parked_on_dead_nodes(self):
        # Both nodes crash (n1's backlog parks on it — nothing is alive
        # to take it); n0's recovery lands mid-partition, so the parked
        # work must keep waiting and only move at the HEAL.  Were either
        # half of that contract broken the run would deadlock or start
        # work on an unreachable node.
        from repro.sim import BacklogReassigned, NodeRecovered, TaskStarted

        eng = self._engine(6, [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                               FaultEvent(4.0, "n1", FaultKind.FAILURE),
                               FaultEvent(8.0, "n0", FaultKind.RECOVERY)])
        rt = eng.runtime
        moves: list[tuple[float, str]] = []
        rt.bus.subscribe(
            BacklogReassigned,
            lambda ev: moves.append((ev.time, ev.source)),
        )
        starts: list[tuple[float, str]] = []
        rt.bus.subscribe(
            TaskStarted, lambda ev: starts.append((ev.time, ev.node_id))
        )

        def _heal_on_recovery(ev):
            # The heal lands in the recovery instant, before the revived
            # node looks for parked work.
            if ev.node_id == "n0":
                rt.state.pending_faults += 1
                rt.faults.on_fault(FaultEvent(ev.time, "n0", FaultKind.HEAL))

        rt.bus.subscribe(NodeRecovered, _heal_on_recovery)
        m = eng.run()
        assert m.tasks_completed == 6
        # n1's parked backlog moved exactly once n0 became reachable.
        assert [t for t, nid in moves if nid == "n1" and t >= 8.0]
        # All post-recovery work ran on the healed node, none before the
        # heal instant and none on the still-dead n1.
        assert all(nid == "n0" for t, nid in starts if t >= 8.0)
        assert not [t for t, nid in starts if nid == "n1" and t >= 4.0]
