"""Tests for fault injection: plan model, validation, engine behaviour."""

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import SimConfig
from repro.core import HeuristicScheduler
from repro.dag import Job, Task
from repro.sim import (
    FaultEvent,
    FaultKind,
    SimEngine,
    random_fault_plan,
    validate_fault_plan,
)


def mk(tid: str, size=5000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=1.0, mem=0.5))


def one_lane(n: int) -> Cluster:
    return Cluster([
        NodeSpec(node_id=f"n{i}", cpu_size=1.0, mem_size=1.0, mips_per_unit=500.0)
        for i in range(n)
    ])


def run(cluster, jobs, faults, **kw):
    eng = SimEngine(
        cluster, jobs, HeuristicScheduler(cluster),
        sim_config=SimConfig(epoch=1.0, scheduling_period=10.0),
        faults=faults, **kw,
    )
    return eng.run()


class TestFaultEvent:
    def test_valid(self):
        FaultEvent(1.0, "n0", FaultKind.FAILURE)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, "n0", FaultKind.FAILURE)

    def test_empty_node_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "", FaultKind.FAILURE)

    @pytest.mark.parametrize("factor", [0.0, 1.0, 1.5])
    def test_slowdown_factor_bounds(self, factor):
        with pytest.raises(ValueError):
            FaultEvent(1.0, "n0", FaultKind.SLOWDOWN, factor=factor)


class TestValidatePlan:
    def test_good_plan(self):
        cl = one_lane(2)
        plan = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(5.0, "n0", FaultKind.RECOVERY),
            FaultEvent(2.0, "n1", FaultKind.SLOWDOWN, 0.5),
            FaultEvent(4.0, "n1", FaultKind.RESTORE),
        ]
        assert validate_fault_plan(plan, cl) == []

    def test_unknown_node(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "ghost", FaultKind.FAILURE)]
        assert any("unknown node" in p for p in validate_fault_plan(plan, cl))

    def test_double_failure(self):
        cl = one_lane(1)
        plan = [
            FaultEvent(1.0, "n0", FaultKind.FAILURE),
            FaultEvent(2.0, "n0", FaultKind.FAILURE),
        ]
        assert any("fails while down" in p for p in validate_fault_plan(plan, cl))

    def test_restore_without_slowdown(self):
        cl = one_lane(1)
        plan = [FaultEvent(1.0, "n0", FaultKind.RESTORE)]
        assert validate_fault_plan(plan, cl) != []


class TestRandomPlan:
    def test_deterministic(self):
        cl = one_lane(3)
        a = random_fault_plan(cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0)
        b = random_fault_plan(cl, 10_000.0, rng=5, mtbf=2000.0, mttr=100.0)
        assert a == b

    def test_validates(self):
        cl = one_lane(4)
        plan = random_fault_plan(
            cl, 20_000.0, rng=9, mtbf=3000.0, mttr=200.0,
            straggler_rate=0.5,
        )
        assert validate_fault_plan(plan, cl) == []

    def test_within_horizon(self):
        cl = one_lane(2)
        plan = random_fault_plan(cl, 5000.0, rng=1, mtbf=800.0, mttr=100.0)
        assert all(ev.time < 5000.0 for ev in plan)


class TestEngineFaultHandling:
    def test_failure_reassigns_and_completes(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 4
        assert m.num_node_failures == 1
        assert m.num_task_reassignments >= 1

    def test_failure_loses_in_flight_progress(self):
        # One node fails mid-task; a second node carries on.  The failed
        # task must rerun, so the makespan exceeds the fault-free run.
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE),
                  FaultEvent(50.0, "n0", FaultKind.RECOVERY)]
        faulty = run(cl, [job], faults)
        clean = run(cl, [job], None)
        assert faulty.makespan > clean.makespan

    def test_all_nodes_down_parks_until_recovery(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=1000.0)], deadline=1e6)
        faults = [FaultEvent(0.5, "n0", FaultKind.FAILURE),
                  FaultEvent(30.0, "n0", FaultKind.RECOVERY)]
        m = run(cl, [job], faults)
        assert m.tasks_completed == 1
        assert m.makespan >= 30.0  # could not finish before the recovery

    def test_straggler_slows_completion(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)  # 10 s
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.5),
                  FaultEvent(1e5, "n0", FaultKind.RESTORE)]
        m = run(cl, [job], faults)
        # 2 s at full rate (1000 MI) + 4000 MI at 250 MIPS = 2 + 16 = 18 s.
        assert m.makespan == pytest.approx(18.0, abs=0.1)

    def test_restore_speeds_back_up(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0", size=5000.0)], deadline=1e6)
        faults = [FaultEvent(2.0, "n0", FaultKind.SLOWDOWN, factor=0.5),
                  FaultEvent(6.0, "n0", FaultKind.RESTORE)]
        m = run(cl, [job], faults)
        # 2 s full (1000 MI) + 4 s half (1000 MI) + 3000 MI full (6 s) = 12 s.
        assert m.makespan == pytest.approx(12.0, abs=0.1)

    def test_invalid_plan_rejected_at_construction(self):
        cl = one_lane(1)
        job = Job.from_tasks("J", [mk("t0")], deadline=1e6)
        with pytest.raises(ValueError, match="invalid fault plan"):
            SimEngine(
                cl, [job], HeuristicScheduler(cl),
                faults=[FaultEvent(1.0, "ghost", FaultKind.FAILURE)],
            )

    def test_failures_not_counted_as_preemptions(self):
        cl = one_lane(2)
        job = Job.from_tasks("J", [mk(f"t{i}") for i in range(4)], deadline=1e6)
        faults = [FaultEvent(3.0, "n0", FaultKind.FAILURE)]
        m = run(cl, [job], faults)
        assert m.num_preemptions == 0
