"""Sweep fabric tests: run keys, result store, executor, stats, dash.

The load-bearing guarantees under test, in paper terms (§V's sweeps are
what the fabric parallelizes):

* :class:`RunKey` is representation-independent — dict ordering and
  float spelling never split the cache key, NaN never enters it, and a
  changed code fingerprint is always a miss (property-based).
* :class:`ResultStore` is a cache, not a database — corrupt entries
  quarantine to misses, eviction drops oldest-first, losing it costs
  recompute time only.
* :func:`parallel_map` / :func:`run_grid` — parallel results are
  byte-identical to the serial reference, worker crashes quarantine to
  error records, re-runs against a warm store compute nothing.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.sweep import (
    ResultStore,
    RunKey,
    RunSpec,
    SweepConfig,
    canonical_json,
    parallel_map,
    run_grid,
)
from repro.sweep.dash import load_runs, render_html, render_terminal
from repro.sweep.runners import get_runner, register_runner, runner_names
from repro.sweep.stats import read_stats

# --------------------------------------------------------------- strategies

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=8),
)
_trees = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=8,
)
_params = st.dictionaries(st.text(max_size=6), _trees, max_size=4)


def _permute(obj, rnd):
    """Rebuild ``obj`` with shuffled dict insertion order and random
    list/tuple spelling — a different *representation* of the same value."""
    if isinstance(obj, dict):
        keys = list(obj)
        rnd.shuffle(keys)
        return {k: _permute(obj[k], rnd) for k in keys}
    if isinstance(obj, list):
        items = [_permute(v, rnd) for v in obj]
        return tuple(items) if rnd.random() < 0.5 else items
    if isinstance(obj, float) and obj.is_integer() and abs(obj) < 2**53:
        # Integral floats may be respelled as the int they equal.
        return int(obj) if rnd.random() < 0.5 else obj
    return obj


# ----------------------------------------------------------------- run keys


class TestRunKey:
    @given(params=_params, rnd=st.randoms())
    @settings(max_examples=60, deadline=None)
    def test_digest_stable_under_representation(self, params, rnd):
        permuted = _permute(params, rnd)
        a = RunKey.make("r", params, fingerprint="fp")
        b = RunKey.make("r", permuted, fingerprint="fp")
        assert a.digest == b.digest

    def test_integral_float_and_int_collapse(self):
        a = RunKey.make("r", {"scale": 2.0, "jobs": 4}, fingerprint="fp")
        b = RunKey.make("r", {"jobs": 4.0, "scale": 2}, fingerprint="fp")
        assert a.digest == b.digest

    def test_negative_zero_collapses(self):
        a = canonical_json({"x": -0.0})
        b = canonical_json({"x": 0.0})
        assert a == b

    def test_non_finite_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                canonical_json({"x": bad})

    def test_non_str_keys_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({1: "x"})

    def test_unsupported_types_rejected(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_runner_and_fingerprint_split_the_key(self):
        base = RunKey.make("r", {"x": 1}, fingerprint="fp")
        assert base.digest != RunKey.make("q", {"x": 1}, fingerprint="fp").digest
        assert base.digest != RunKey.make("r", {"x": 1}, fingerprint="fp2").digest

    def test_to_dict_round_trips_params(self):
        key = RunKey.make("r", {"b": 2, "a": [1, 2.5]}, fingerprint="fp")
        d = key.to_dict()
        assert d["digest"] == key.digest
        assert RunKey.make(d["runner"], d["params"], d["fingerprint"]).digest \
            == key.digest


# -------------------------------------------------------------------- store


class TestResultStore:
    def test_roundtrip_and_accounting(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = RunKey.make("r", {"x": 1}, fingerprint="fp")
        assert store.get(key) is None
        store.put(key, {"v": 42})
        assert store.get(key) == {"v": 42}
        assert store.accounting() == {
            "hits": 1, "misses": 1, "corrupt": 0, "evicted": 0,
        }

    def test_changed_fingerprint_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(RunKey.make("r", {"x": 1}, fingerprint="fp1"), {"v": 1})
        assert store.get(RunKey.make("r", {"x": 1}, fingerprint="fp2")) is None

    def test_corrupt_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = RunKey.make("r", {"x": 1}, fingerprint="fp")
        store.put(key, {"v": 1})
        store.path_for(key).write_text("{not json")
        assert store.get(key) is None
        assert store.corrupt == 1
        assert store.path_for(key).with_suffix(".corrupt").exists()
        # Quarantine moved the file aside: the next get is a clean miss.
        assert store.get(key) is None

    def test_digest_mismatch_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = RunKey.make("r", {"x": 1}, fingerprint="fp")
        other = RunKey.make("r", {"x": 2}, fingerprint="fp")
        store.put(other, {"v": 2})
        os.replace(store.path_for(other), store.path_for(key))
        assert store.get(key) is None
        assert store.corrupt == 1

    def test_eviction_drops_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_entries=2)
        keys = [
            RunKey.make("r", {"x": i}, fingerprint="fp") for i in range(3)
        ]
        for age, key in enumerate(keys):
            store.put(key, {"v": age})
            # Distinct mtimes so age ordering is unambiguous on coarse
            # filesystem clocks.
            os.utime(store.path_for(key), (1000.0 + age, 1000.0 + age))
        store._evict()
        assert store.get(keys[0]) is None  # oldest gone
        assert store.get(keys[1]) == {"v": 1}
        assert store.get(keys[2]) == {"v": 2}
        assert store.evicted == 1

    def test_find_by_unique_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = RunKey.make("r", {"x": 1}, fingerprint="fp")
        store.put(key, {"v": 1})
        entry = store.find(key.digest[:12])
        assert entry is not None
        assert entry["params"] == {"x": 1}
        assert store.find("ffffffffffff") is None


# ----------------------------------------------------------------- executor


def _square(x):
    return x * x


def _flaky(x):
    if x == 2:
        raise ValueError("boom")
    return x


def _hard_crash(x):
    if x == 1:
        os._exit(7)
    return x


class TestParallelMap:
    def test_parallel_matches_serial(self):
        items = list(range(6))
        serial = parallel_map(_square, items, jobs=1)
        forked = parallel_map(_square, items, jobs=3)
        assert serial == forked == [("ok", x * x) for x in items]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_exception_quarantined(self, jobs):
        out = parallel_map(_flaky, [1, 2, 3], jobs=jobs)
        assert out[0] == ("ok", 1)
        assert out[2] == ("ok", 3)
        status, info = out[1]
        assert status == "error"
        assert info["type"] == "ValueError"
        assert "boom" in info["traceback"]

    def test_hard_crash_quarantined(self):
        # os._exit(7) in a worker must not wedge the pool or the parent
        # (only meaningful with process isolation — serial would die).
        out = parallel_map(_hard_crash, [0, 1, 2], jobs=2)
        assert out[0] == ("ok", 0)
        assert out[2] == ("ok", 2)
        status, info = out[1]
        assert status == "error"
        assert info["type"] == "WorkerCrash"
        assert "7" in info["message"]

    def test_on_complete_covers_every_item(self):
        seen = {}
        parallel_map(
            _square, [3, 4, 5], jobs=2,
            on_complete=lambda i, outcome: seen.setdefault(i, outcome),
        )
        assert seen == {0: ("ok", 9), 1: ("ok", 16), 2: ("ok", 25)}


# Registered at import time so fork-children inherit the registry.
@register_runner("test_echo")
def _echo_runner(params, stats_path=None):
    return {"doubled": params["x"] * 2}


@register_runner("test_fail")
def _fail_runner(params, stats_path=None):
    raise RuntimeError("always fails")


class TestRunGrid:
    def _specs(self, n=4):
        return [
            RunSpec(runner="test_echo", params={"x": i}, label=f"echo{i}")
            for i in range(n)
        ]

    def test_serial_parallel_parity(self):
        serial = run_grid(self._specs(), SweepConfig(jobs=1))
        forked = run_grid(self._specs(), SweepConfig(jobs=2))
        assert serial.results() == forked.results()
        assert [r.status for r in forked.records] == ["ok"] * 4

    def test_rerun_is_all_hits(self, tmp_path):
        cfg = SweepConfig(jobs=1, store=str(tmp_path / "store"))
        first = run_grid(self._specs(), cfg)
        assert (first.hits, first.computed) == (0, 4)
        second = run_grid(self._specs(), cfg)
        assert (second.hits, second.computed) == (4, 0)
        assert second.results() == first.results()
        assert all(r.cached for r in second.records)
        assert "4 cache hits, 0 computed" in second.format_accounting()

    def test_refresh_recomputes_but_restores(self, tmp_path):
        cfg = SweepConfig(jobs=1, store=str(tmp_path / "store"))
        run_grid(self._specs(), cfg)
        refreshed = run_grid(
            self._specs(),
            SweepConfig(jobs=1, store=str(tmp_path / "store"), refresh=True),
        )
        assert (refreshed.hits, refreshed.computed) == (0, 4)
        # The refreshed results repopulate the store.
        again = run_grid(self._specs(), cfg)
        assert (again.hits, again.computed) == (4, 0)

    def test_cache_false_always_executes(self, tmp_path):
        spec = RunSpec(runner="test_echo", params={"x": 9}, cache=False)
        cfg = SweepConfig(jobs=1, store=str(tmp_path / "store"))
        for _ in range(2):
            report = run_grid([spec], cfg)
            assert (report.hits, report.computed) == (0, 1)

    def test_errors_never_cached(self, tmp_path):
        spec = RunSpec(runner="test_fail", params={})
        cfg = SweepConfig(jobs=1, store=str(tmp_path / "store"))
        for _ in range(2):
            report = run_grid([spec], cfg)
            assert not report.ok
            assert report.records[0].status == "error"
            assert "always fails" in report.records[0].error["traceback"]
        assert ResultStore(tmp_path / "store").entries() == []

    def test_unknown_runner_is_error_record(self):
        report = run_grid([RunSpec(runner="no_such_runner", params={})])
        assert report.records[0].status == "error"
        assert report.records[0].error["type"] == "KeyError"

    def test_builtin_runners_registered(self):
        names = runner_names()
        for expected in (
            "scheduling", "preemption", "figure", "soak", "replay_bench",
        ):
            assert expected in names
            assert callable(get_runner(expected))


# --------------------------------------------------- stats + dash (end-to-end)


def _tiny_sched_spec(seed=0):
    return RunSpec(
        runner="scheduling",
        params={
            "profile": "uniform", "nodes": 2, "num_jobs": 2,
            "method": "DSP", "scale": 5.0, "seed": seed,
            "demand_fraction": 0.8,
        },
        label=f"tiny/seed{seed}",
    )


class TestStatsAndDash:
    def test_stats_rows_and_byte_stability(self, tmp_path):
        spec = _tiny_sched_spec()
        paths = []
        for sub in ("a", "b"):
            report = run_grid(
                [spec], SweepConfig(jobs=1, stats_dir=str(tmp_path / sub))
            )
            assert report.ok
            files = list((tmp_path / sub).glob("*.stats.jsonl.gz"))
            assert len(files) == 1
            paths.append(files[0])
        # gzip mtime=0 + deterministic sim => byte-identical reruns.
        assert paths[0].read_bytes() == paths[1].read_bytes()

        meta, rows = read_stats(str(paths[0]))
        assert meta["schema"] == 1
        assert meta["label"] == "DSP/s0/n2"
        assert rows, "expected at least one epoch sample"
        for row in rows:
            assert 0.0 <= row["util_cpu"] <= 1.0
            assert row["nodes_up"] <= row["nodes_total"] == 2
            assert row["queued"] >= 0 and row["running"] >= 0
        assert rows[-1]["completed"] > 0
        # Monotone simulation time and cumulative counters.
        times = [row["t"] for row in rows]
        assert times == sorted(times)
        preempts = [row["preemptions"] for row in rows]
        assert preempts == sorted(preempts)

    def test_dash_renders_terminal_and_html(self, tmp_path):
        specs = [_tiny_sched_spec(seed) for seed in (0, 1)]
        report = run_grid(
            specs, SweepConfig(jobs=1, stats_dir=str(tmp_path / "stats"))
        )
        assert report.ok
        runs = load_runs([str(tmp_path / "stats")])
        assert len(runs) == 2

        text = render_terminal(runs)
        for panel in (
            "Utilization", "Queue depth", "Preemption churn",
            "Window occupancy",
        ):
            assert panel in text

        html = render_html(runs, title="t")
        assert html.count("<svg") == 4
        assert "DSP/s0/n2" in html and "DSP/s1/n2" in html

    def test_dash_needs_stats_files(self, tmp_path):
        assert load_runs([str(tmp_path)]) == []


# ------------------------------------------------------------------ CLI glue


class TestSweepCli:
    def test_cli_sweep_cache_and_aggregate(self, tmp_path, capsys):
        from repro.cli import main

        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        argv = [
            "sweep", "--kind", "scheduling", "--methods", "DSP",
            "--seeds", "0", "1", "--profile", "uniform", "--nodes", "2",
            "--num-jobs", "2", "--scale", "5",
            "--store", str(tmp_path / "store"), "--no-stats",
        ]
        assert main(argv + ["--out", str(out_a)]) == 0
        first = capsys.readouterr().out
        assert "2 runs, 0 cache hits, 2 computed" in first

        assert main(argv + ["--out", str(out_b), "--jobs", "2"]) == 0
        second = capsys.readouterr().out
        assert "2 runs, 2 cache hits, 0 computed" in second
        assert out_a.read_bytes() == out_b.read_bytes()

        agg = json.loads(out_a.read_text())
        assert [run["label"] for run in agg["runs"]] == [
            "DSP/seed0", "DSP/seed1",
        ]
        assert all(run["status"] == "ok" for run in agg["runs"])

    def test_cli_only_artifact_roundtrip(self, tmp_path, capsys):
        from repro.cli import main
        from repro.sweep.soakcases import soak_run_key

        artifact = tmp_path / "soak_fail_0001.json"
        artifact.write_text(json.dumps(
            {"schema": 1, "run_key": soak_run_key("plain", 0, 1).to_dict()}
        ))
        rc = main([
            "sweep", "--only", str(artifact), "--no-store", "--no-stats",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 runs, 0 cache hits, 1 computed" in out
        assert '"outcome"' in out

    def test_cli_only_unresolvable(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "sweep", "--only", "deadbeef", "--store",
            str(tmp_path / "empty"), "--no-stats",
        ])
        assert rc == 2
