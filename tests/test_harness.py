"""Tests for the experiment harness (builders and run recipes)."""

import pytest

from repro.cluster import ec2_cluster, palmetto_cluster
from repro.config import DSPConfig, SimConfig
from repro.experiments import (
    PREEMPTION_NAMES,
    SCHEDULER_NAMES,
    build_workload_for_cluster,
    compute_level_deadlines,
    make_preemption_policies,
    make_schedulers,
    run_preemption,
    run_scheduling,
)


@pytest.fixture(scope="module")
def cluster():
    return palmetto_cluster(4)


@pytest.fixture(scope="module")
def workload(cluster):
    return build_workload_for_cluster(3, cluster, scale=60.0, seed=5)


FAST = SimConfig(epoch=5.0, scheduling_period=60.0)


class TestBuilders:
    def test_method_name_tuples(self):
        assert SCHEDULER_NAMES == ("DSP", "Aalo", "TetrisW/SimDep", "TetrisW/oDep")
        assert PREEMPTION_NAMES == ("DSP", "DSPW/oPP", "Natjam", "Amoeba", "SRPT")

    def test_make_schedulers_covers_names(self, cluster):
        assert set(make_schedulers(cluster)) == set(SCHEDULER_NAMES)

    def test_make_policies_covers_names(self):
        assert set(make_preemption_policies()) == set(PREEMPTION_NAMES)

    def test_policy_variants(self):
        policies = make_preemption_policies()
        assert policies["DSP"].name == "DSP"
        assert policies["DSPW/oPP"].name == "DSPW/oPP"

    def test_workload_demands_fit_smallest_node(self, cluster, workload):
        smallest = min((n.capacity for n in cluster), key=lambda c: c.norm1())
        for task in workload.all_tasks().values():
            assert task.demand.fits_within(smallest)

    def test_workload_fits_ec2_too(self):
        cl = ec2_cluster(3)
        w = build_workload_for_cluster(3, cl, scale=60.0, seed=5)
        smallest = min((n.capacity for n in cl), key=lambda c: c.norm1())
        for task in w.all_tasks().values():
            assert task.demand.fits_within(smallest)

    def test_level_deadlines_bounded_by_job_deadline(self, cluster, workload):
        deadlines = compute_level_deadlines(workload, cluster)
        for job in workload.jobs:
            for tid in job.tasks:
                assert deadlines[tid] <= job.deadline + 1e-9


class TestRunRecipes:
    def test_run_scheduling_completes(self, cluster, workload):
        sched = make_schedulers(cluster)["DSP"]
        m = run_scheduling(workload, cluster, sched, sim_config=FAST)
        assert m.tasks_completed == workload.num_tasks
        assert m.num_preemptions == 0  # NullPreemption

    def test_run_scheduling_blind_scheduler_may_disorder(self, cluster, workload):
        sched = make_schedulers(cluster)["TetrisW/oDep"]
        m = run_scheduling(workload, cluster, sched, sim_config=FAST)
        assert m.tasks_completed == workload.num_tasks

    def test_run_preemption_each_policy_completes(self, cluster, workload):
        for name, policy in make_preemption_policies().items():
            m = run_preemption(workload, cluster, policy, sim_config=FAST)
            assert m.tasks_completed == workload.num_tasks, name

    def test_dsp_run_zero_disorders(self, cluster, workload):
        m = run_preemption(
            workload, cluster, make_preemption_policies()["DSP"], sim_config=FAST
        )
        assert m.num_disorders == 0

    def test_scheduling_runs_reuse_scheduler_safely(self, cluster, workload):
        # The harness resets persistent planner state between runs: two runs
        # with the same scheduler object must agree.
        sched = make_schedulers(cluster)["DSP"]
        m1 = run_scheduling(workload, cluster, sched, sim_config=FAST)
        m2 = run_scheduling(workload, cluster, sched, sim_config=FAST)
        assert m1.makespan == m2.makespan
