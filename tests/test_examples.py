"""Smoke tests: every shipped example must run cleanly end-to-end.

Examples are the first thing a downstream user runs; a broken example is
a broken front door.  Each is executed as a subprocess with the repo's
``src`` on the path; internal assertions inside the examples double as
behavioural checks (e.g. the deadline rescue in preemption_deadlines).
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = REPO / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=300, env=env,
    )


class TestExamples:
    def test_all_examples_present(self):
        present = {p.name for p in EXAMPLES.glob("*.py")}
        assert {
            "quickstart.py",
            "etl_pipeline.py",
            "scheduler_shootout.py",
            "preemption_deadlines.py",
            "trace_workflow.py",
            "fault_tolerance.py",
            "resilience.py",
            "timeline_debug.py",
            "durable_run.py",
            "service_run.py",
        } <= present

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "makespan" in result.stdout
        assert "offline plan" in result.stdout

    def test_etl_pipeline(self):
        result = run_example("etl_pipeline.py")
        assert result.returncode == 0, result.stderr
        assert "top-5 priority tasks" in result.stdout
        assert "ingest" in result.stdout

    def test_trace_workflow(self):
        result = run_example("trace_workflow.py")
        assert result.returncode == 0, result.stderr
        assert "round-tripped" in result.stdout
        assert "exact ILP schedule" in result.stdout

    def test_scheduler_shootout_small(self):
        result = run_example("scheduler_shootout.py", "6")
        assert result.returncode == 0, result.stderr
        assert "best makespan" in result.stdout

    def test_timeline_debug(self):
        result = run_example("timeline_debug.py")
        assert result.returncode == 0, result.stderr
        assert "#" in result.stdout  # the stall blocks
        assert "dependency-aware run" in result.stdout

    def test_preemption_deadlines(self):
        result = run_example("preemption_deadlines.py")
        assert result.returncode == 0, result.stderr
        assert "deadline rescue" in result.stdout
        assert "PP ablation" in result.stdout

    def test_resilience(self):
        result = run_example("resilience.py")
        assert result.returncode == 0, result.stderr
        assert "resilience ON" in result.stdout
        assert "quarantines" in result.stdout
        assert "speculative wins" in result.stdout

    def test_durable_run(self):
        result = run_example("durable_run.py")
        assert result.returncode == 0, result.stderr
        assert "crashed run" in result.stdout
        assert "recovering" in result.stdout
        # The example's own asserts verify metric/journal identity; the
        # printed line is the user-visible witness.
        assert "journal byte-identical" in result.stdout

    def test_service_run(self):
        result = run_example("service_run.py")
        assert result.returncode == 0, result.stderr
        assert "zero acknowledged-job loss" in result.stdout
        assert "per-tenant fairness" in result.stdout
        assert "status answered" in result.stdout
        assert "journal byte-identical" in result.stdout
