"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NodeSpec, ResourceVector, uniform_cluster
from repro.config import DSPConfig, SimConfig
from repro.dag import Job, Task, diamond_dag, fork_join_dag, paper_figure2_dag
from repro.sim.policy import NodeView, TaskView


@pytest.fixture
def small_cluster() -> Cluster:
    """Two homogeneous nodes, g(k) = 1000 MIPS each."""
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


@pytest.fixture
def config() -> DSPConfig:
    return DSPConfig()


@pytest.fixture
def fast_sim_config() -> SimConfig:
    """Short epochs/periods so unit-scale workloads exercise every code path."""
    return SimConfig(epoch=1.0, scheduling_period=10.0)


@pytest.fixture
def diamond_job() -> Job:
    """Four tasks A -> {B, C} -> D, 1 s each at 1000 MIPS, deadline 100 s."""
    return Job.from_tasks("J1", diamond_dag("J1", size_mi=1000.0), deadline=100.0)


@pytest.fixture
def fig2_job() -> Job:
    """The paper's Fig. 2 seven-task example."""
    return Job.from_tasks("fig2", paper_figure2_dag(), deadline=1000.0)
