"""Tests for the synthetic Google-trace substrate (records + generator)."""

import numpy as np
import pytest

from repro.trace import GoogleTraceGenerator, TraceTaskRecord


class TestTraceTaskRecord:
    def test_duration(self):
        r = TraceTaskRecord("j", 0, 10.0, 25.0, 0.5, 0.5)
        assert r.duration == pytest.approx(15.0)

    def test_end_after_start_required(self):
        with pytest.raises(ValueError):
            TraceTaskRecord("j", 0, 10.0, 10.0, 0.5, 0.5)

    @pytest.mark.parametrize("cpu", [0.0, 1.5, -0.1])
    def test_cpu_bounds(self, cpu):
        with pytest.raises(ValueError):
            TraceTaskRecord("j", 0, 0.0, 1.0, cpu, 0.5)

    @pytest.mark.parametrize("mem", [0.0, 2.0])
    def test_mem_bounds(self, mem):
        with pytest.raises(ValueError):
            TraceTaskRecord("j", 0, 0.0, 1.0, 0.5, mem)

    def test_overlap_true(self):
        a = TraceTaskRecord("j", 0, 0.0, 10.0, 0.5, 0.5)
        b = TraceTaskRecord("j", 1, 5.0, 15.0, 0.5, 0.5)
        assert a.overlaps(b) and b.overlaps(a)

    def test_overlap_false_disjoint(self):
        a = TraceTaskRecord("j", 0, 0.0, 10.0, 0.5, 0.5)
        b = TraceTaskRecord("j", 1, 10.0, 20.0, 0.5, 0.5)
        # Touching endpoints do not overlap: the §V rule creates an edge.
        assert not a.overlaps(b)

    def test_overlap_containment(self):
        a = TraceTaskRecord("j", 0, 0.0, 100.0, 0.5, 0.5)
        b = TraceTaskRecord("j", 1, 10.0, 20.0, 0.5, 0.5)
        assert a.overlaps(b)


class TestGoogleTraceGenerator:
    def test_deterministic(self):
        a = GoogleTraceGenerator(rng=7).job_records("j", 20)
        b = GoogleTraceGenerator(rng=7).job_records("j", 20)
        assert [(r.start_time, r.end_time, r.cpu) for r in a] == [
            (r.start_time, r.end_time, r.cpu) for r in b
        ]

    def test_durations_clipped(self):
        gen = GoogleTraceGenerator(rng=0, min_duration=5.0, max_duration=50.0)
        durations = [gen.sample_duration() for _ in range(500)]
        assert min(durations) >= 5.0
        assert max(durations) <= 50.0

    def test_duration_heavy_tail(self):
        gen = GoogleTraceGenerator(rng=0)
        durations = np.array([gen.sample_duration() for _ in range(3000)])
        # Lognormal: mean well above median.
        assert durations.mean() > np.median(durations) * 1.2

    def test_median_near_target(self):
        gen = GoogleTraceGenerator(rng=0, median_duration=100.0)
        durations = np.array([gen.sample_duration() for _ in range(4000)])
        assert 70.0 < np.median(durations) < 140.0

    def test_cpu_mem_in_unit_interval(self):
        gen = GoogleTraceGenerator(rng=0)
        for _ in range(200):
            assert 0.0 < gen.sample_cpu() <= 1.0
            assert 0.0 < gen.sample_mem() <= 1.0

    def test_cpu_concentrated_low(self):
        gen = GoogleTraceGenerator(rng=0)
        vals = np.array([gen.sample_cpu() for _ in range(2000)])
        # Beta(2, 8): mean 0.2, most mass below 0.5.
        assert vals.mean() < 0.3
        assert (vals < 0.5).mean() > 0.9

    def test_job_records_indices(self):
        records = GoogleTraceGenerator(rng=1).job_records("jobX", 15)
        assert [r.task_index for r in records] == list(range(15))
        assert all(r.job_id == "jobX" for r in records)

    def test_job_records_staggered_starts(self):
        records = GoogleTraceGenerator(rng=1).job_records("j", 30)
        starts = [r.start_time for r in records]
        assert starts == sorted(starts)
        assert starts[-1] > starts[0]

    def test_job_start_offset(self):
        records = GoogleTraceGenerator(rng=1).job_records("j", 5, job_start=500.0)
        assert min(r.start_time for r in records) >= 500.0

    def test_trace_multiple_jobs(self):
        trace = GoogleTraceGenerator(rng=2).trace([("a", 5), ("b", 7)])
        assert sum(1 for r in trace if r.job_id == "a") == 5
        assert sum(1 for r in trace if r.job_id == "b") == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            GoogleTraceGenerator(median_duration=0.0)
        with pytest.raises(ValueError):
            GoogleTraceGenerator(min_duration=10.0, max_duration=5.0)
        with pytest.raises(ValueError):
            GoogleTraceGenerator().job_records("j", 0)
