"""Tests for DSPScheduler routing and the DSPSystem facade."""

import pytest

from repro.cluster import uniform_cluster
from repro.config import DSPConfig
from repro.core import DSPScheduler, DSPSystem, verify_schedule
from repro.dag import Job, Task, diamond_dag, layered_random_dag


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestDSPSchedulerRouting:
    def test_small_batch_uses_ilp(self, cluster):
        sched = DSPScheduler(cluster, ilp_task_limit=12)
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        plan = sched.schedule([job])
        assert sched.last_used == "ilp"
        # Exact: the diamond optimum is 3 s on two nodes.
        assert plan.makespan == pytest.approx(3.0, abs=1e-4)

    def test_large_batch_uses_heuristic(self, cluster):
        sched = DSPScheduler(cluster, ilp_task_limit=12)
        job = Job.from_tasks("J", layered_random_dag("J", 40, rng=2), deadline=1e9)
        sched.schedule([job])
        assert sched.last_used == "heuristic"

    def test_ilp_disabled_by_zero_limit(self, cluster):
        sched = DSPScheduler(cluster, ilp_task_limit=0)
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        sched.schedule([job])
        assert sched.last_used == "heuristic"

    def test_infeasible_ilp_falls_back(self, cluster):
        # Deadline too tight for the exact ILP: heuristic best-effort plan.
        sched = DSPScheduler(cluster, ilp_task_limit=12)
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=0.5)
        plan = sched.schedule([job])
        assert sched.last_used == "heuristic"
        assert len(plan) == 4

    def test_node_limit_gates_ilp(self):
        big_cluster = uniform_cluster(10, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)
        sched = DSPScheduler(big_cluster, ilp_task_limit=12, ilp_node_limit=4)
        job = Job.from_tasks("J1", diamond_dag("J1"), deadline=100.0)
        sched.schedule([job])
        assert sched.last_used == "heuristic"

    def test_negative_limit_rejected(self, cluster):
        with pytest.raises(ValueError):
            DSPScheduler(cluster, ilp_task_limit=-1)

    def test_reset_clears_state(self, cluster):
        sched = DSPScheduler(cluster, ilp_task_limit=0)
        job = Job.from_tasks("J", layered_random_dag("J", 30, rng=2), deadline=1e9)
        p1 = sched.schedule([job])
        sched.reset()
        p2 = sched.schedule([job])
        assert {t: a.start for t, a in p1.assignments.items()} == {
            t: a.start for t, a in p2.assignments.items()
        }


class TestDSPSystem:
    def test_build_default(self, cluster):
        system = DSPSystem.build(cluster)
        assert system.name == "DSP"
        assert system.config.use_pp

    def test_build_without_pp(self, cluster):
        system = DSPSystem.build(cluster, pp=False)
        assert system.name == "DSPW/oPP"
        assert not system.config.use_pp

    def test_pp_true_overrides_config(self, cluster):
        system = DSPSystem.build(cluster, config=DSPConfig().without_pp(), pp=True)
        assert system.config.use_pp

    def test_components_share_config(self, cluster):
        system = DSPSystem.build(cluster, config=DSPConfig(gamma=0.7))
        assert system.config.gamma == 0.7
        assert system.preemption._config.gamma == 0.7
