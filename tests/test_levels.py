"""Tests for per-level task deadlines and allowable waiting time (§IV-B)."""

import pytest

from repro.core import allowable_waiting_time, level_max_exec_times, task_deadlines
from repro.dag import Job, Task


def mk(tid: str, parents=(), size=1000.0) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size, parents=tuple(parents))


@pytest.fixture
def three_level_job() -> Job:
    # Level 1: a (2 s), b (1 s); level 2: c (3 s); level 3: d (1 s)  @1000 MIPS
    tasks = [
        mk("a", size=2000.0),
        mk("b", size=1000.0),
        mk("c", parents=["a", "b"], size=3000.0),
        mk("d", parents=["c"], size=1000.0),
    ]
    return Job.from_tasks("J", tasks, deadline=100.0)


EXEC = {"a": 2.0, "b": 1.0, "c": 3.0, "d": 1.0}


class TestLevelMaxExecTimes:
    def test_values(self, three_level_job):
        assert level_max_exec_times(three_level_job, EXEC) == [2.0, 3.0, 1.0]

    def test_missing_task_raises(self, three_level_job):
        with pytest.raises(KeyError):
            level_max_exec_times(three_level_job, {"a": 1.0})


class TestTaskDeadlines:
    def test_last_level_inherits_job_deadline(self, three_level_job):
        d = task_deadlines(three_level_job, EXEC)
        assert d["d"] == pytest.approx(100.0)

    def test_backward_subtraction(self, three_level_job):
        # Level 2 deadline = 100 - max(level 3) = 99.
        # Level 1 deadline = 100 - (1 + 3) = 96.
        d = task_deadlines(three_level_job, EXEC)
        assert d["c"] == pytest.approx(99.0)
        assert d["a"] == pytest.approx(96.0)
        assert d["b"] == pytest.approx(96.0)

    def test_monotone_with_level(self, three_level_job):
        d = task_deadlines(three_level_job, EXEC)
        assert d["a"] < d["c"] < d["d"]

    def test_single_level_job(self):
        job = Job.from_tasks("J", [mk("x"), mk("y")], deadline=50.0)
        d = task_deadlines(job, {"x": 1.0, "y": 2.0})
        assert d == {"x": 50.0, "y": 50.0}

    def test_chain_job(self):
        tasks = [mk("a"), mk("b", ["a"]), mk("c", ["b"])]
        job = Job.from_tasks("J", tasks, deadline=10.0)
        d = task_deadlines(job, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert d["c"] == pytest.approx(10.0)
        assert d["b"] == pytest.approx(7.0)   # 10 - 3
        assert d["a"] == pytest.approx(5.0)   # 10 - 3 - 2


class TestAllowableWaitingTime:
    def test_positive_slack(self):
        # deadline 100, now 50, remaining 20 -> can wait 30 more.
        assert allowable_waiting_time(100.0, 20.0, 50.0) == pytest.approx(30.0)

    def test_zero_slack(self):
        assert allowable_waiting_time(100.0, 50.0, 50.0) == pytest.approx(0.0)

    def test_negative_means_lost(self):
        assert allowable_waiting_time(100.0, 60.0, 50.0) < 0.0
