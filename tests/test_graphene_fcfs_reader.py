"""Tests for the Graphene-lite / FCFS extension baselines and the real
Google task_events reader."""

import pytest

from repro.baselines import FCFSScheduler, GrapheneLiteScheduler
from repro.cluster import ResourceVector, uniform_cluster
from repro.dag import Job, Task, layered_random_dag
from repro.trace import (
    read_task_events,
    records_from_csv_string,
    infer_dependencies,
)


def mk(tid: str, size=1000.0, cpu=1.0, parents=()) -> Task:
    return Task(task_id=tid, job_id="J", size_mi=size,
                demand=ResourceVector(cpu=cpu, mem=0.5), parents=tuple(parents))


@pytest.fixture
def cluster():
    return uniform_cluster(2, cpu_size=4.0, mem_size=4.0, mips_per_unit=250.0)


class TestGrapheneLite:
    def test_valid_schedule(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 40, rng=2), deadline=1e9)
        plan = GrapheneLiteScheduler(cluster).schedule([job])
        assert set(plan.assignments) == set(job.tasks)
        for tid, task in job.tasks.items():
            for p in task.parents:
                assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9

    def test_trouble_scores(self, cluster):
        long = mk("long", size=50_000.0)
        short = mk("short", size=100.0)
        fat = mk("fat", size=100.0, cpu=3.9)
        job = Job.from_tasks("J", [long, short, fat], deadline=1e9)
        scores = GrapheneLiteScheduler(cluster).trouble_scores([job])
        assert scores["long"] > scores["short"]
        assert scores["fat"] > scores["short"]

    def test_troublesome_placed_first_among_ready(self, cluster):
        # Two independent tasks: the long one is troublesome and must get
        # the earlier slot when both compete for the same lane.
        long = mk("long", size=50_000.0, cpu=3.9)
        short = mk("aaa_short", size=100.0, cpu=3.9)  # id sorts first
        job = Job.from_tasks("J", [long, short], deadline=1e9)
        plan = GrapheneLiteScheduler(cluster).schedule([job])
        # With cpu 3.9 of 4, one task per node: both start at 0 on separate
        # nodes, so compare which got node-00 (the first EFT choice).
        assert plan.assignments["long"].node_id == "node-00"

    def test_quantile_validation(self, cluster):
        with pytest.raises(ValueError):
            GrapheneLiteScheduler(cluster, trouble_quantile=0.0)

    def test_reset_and_persistence(self, cluster):
        sched = GrapheneLiteScheduler(cluster)
        job = Job.from_tasks(
            "J",
            [mk("a", size=40_000.0, cpu=3.9), mk("b", size=40_000.0, cpu=3.9)],
            deadline=1e9,
        )
        sched.schedule([job])  # both nodes busy for ~40 s
        t2 = Task(task_id="K.b", job_id="K", size_mi=1000.0,
                  demand=ResourceVector(cpu=3.9, mem=0.5))
        j2 = Job(job_id="K", tasks={"K.b": t2}, deadline=1e9)
        later = sched.schedule([j2])
        assert later.assignments["K.b"].start > 0.0
        sched.reset()
        again = sched.schedule([j2])
        assert again.assignments["K.b"].start == pytest.approx(0.0)

    def test_empty(self, cluster):
        assert len(GrapheneLiteScheduler(cluster).schedule([])) == 0


class TestFCFS:
    def test_arrival_order_respected(self, cluster):
        first = Job.from_tasks("A", [Task(task_id="A.t", job_id="A", size_mi=50_000.0,
                                          demand=ResourceVector(cpu=3.9, mem=0.5))],
                               deadline=1e9, arrival_time=0.0)
        second = Job.from_tasks("B", [Task(task_id="B.t", job_id="B", size_mi=100.0,
                                           demand=ResourceVector(cpu=3.9, mem=0.5))],
                                deadline=1e9, arrival_time=1.0)
        plan = FCFSScheduler(cluster).schedule([second, first])
        # FCFS: A (earlier arrival) planned first, taking the earliest slot.
        assert plan.assignments["A.t"].start <= plan.assignments["B.t"].start

    def test_precedence(self, cluster):
        job = Job.from_tasks("J", layered_random_dag("J", 25, rng=4), deadline=1e9)
        plan = FCFSScheduler(cluster).schedule([job])
        for tid, task in job.tasks.items():
            for p in task.parents:
                assert plan.assignments[tid].start >= plan.assignments[p].finish - 1e-9


class TestGoogleReader:
    def _rows(self):
        # timestamp, _, job, idx, _, event, _, _, _, cpu, mem
        return [
            ["1000000", "", "j1", "0", "", "1", "", "", "", "0.5", "0.25"],
            ["3000000", "", "j1", "0", "", "4", "", "", "", "", ""],
            ["2000000", "", "j1", "1", "", "1", "", "", "", "0.2", "0.1"],
            ["5000000", "", "j1", "1", "", "4", "", "", "", "", ""],
        ]

    def test_pairs_schedule_and_finish(self):
        records = read_task_events(self._rows())
        assert len(records) == 2
        r0 = records[0]
        assert r0.job_id == "gj1" and r0.task_index == 0
        assert r0.start_time == pytest.approx(1.0)
        assert r0.end_time == pytest.approx(3.0)
        assert r0.cpu == 0.5 and r0.mem == 0.25

    def test_unpaired_finish_dropped(self):
        rows = [["1000000", "", "j1", "0", "", "4", "", "", "", "", ""]]
        assert read_task_events(rows) == []

    def test_unfinished_schedule_dropped(self):
        rows = [["1000000", "", "j1", "0", "", "1", "", "", "", "0.5", "0.5"]]
        assert read_task_events(rows) == []

    def test_bad_resources_dropped(self):
        rows = [
            ["1000000", "", "j1", "0", "", "1", "", "", "", "0.0", "0.5"],
            ["2000000", "", "j1", "0", "", "4", "", "", "", "", ""],
        ]
        assert read_task_events(rows) == []

    def test_malformed_rows_skipped(self):
        rows = [["garbage"], [], ["a", "b"]]
        assert read_task_events(rows) == []

    def test_feeds_dependency_inference(self):
        records = read_task_events(self._rows())
        parents = infer_dependencies(records)
        # Task 1 starts at 2.0 < task 0's end 3.0: overlap -> no edge.
        assert parents[1] == ()
