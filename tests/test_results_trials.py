"""Tests for results persistence (JSON) and multi-trial aggregation."""

import pytest

from repro.experiments import (
    FigureSeries,
    TrialAggregate,
    aggregate_trials,
    figure_from_json,
    figure_to_json,
    load_figure,
    metrics_from_dict,
    metrics_to_dict,
    order_stability,
    save_figure,
)
from repro.sim.metrics import MetricsCollector


def make_fig(figure="figX", values=(1.0, 2.0)) -> FigureSeries:
    return FigureSeries(
        figure=figure,
        x_label="jobs",
        x=(10, 20),
        series={
            "DSP": {"makespan": values},
            "SRPT": {"makespan": tuple(v * 2 for v in values)},
        },
        meta={"nodes": 4},
    )


class TestFigureJson:
    def test_roundtrip(self):
        fig = make_fig()
        back = figure_from_json(figure_to_json(fig))
        assert back.figure == fig.figure
        assert back.x == fig.x
        assert back.series["DSP"]["makespan"] == (1.0, 2.0)
        assert back.meta["nodes"] == 4

    def test_file_roundtrip(self, tmp_path):
        fig = make_fig()
        path = save_figure(fig, tmp_path / "fig.json")
        back = load_figure(path)
        assert back.series == {
            m: dict(per) for m, per in fig.series.items()
        } or back.series["DSP"]["makespan"] == fig.series["DSP"]["makespan"]

    def test_schema_version_checked(self):
        with pytest.raises(ValueError, match="schema"):
            figure_from_json('{"schema": 999}')

    def test_json_is_stable(self):
        assert figure_to_json(make_fig()) == figure_to_json(make_fig())


class TestMetricsDict:
    def _metrics(self):
        mc = MetricsCollector()
        mc.register_job("J", 0.0, 10.0)
        mc.register_task("t", "J")
        mc.record_task_completion("t", 5.0)
        mc.record_job_completion("J", 5.0)
        return mc.finalize(5.0)

    def test_roundtrip(self):
        m = self._metrics()
        back = metrics_from_dict(metrics_to_dict(m))
        assert back == m

    def test_unknown_field_rejected(self):
        payload = metrics_to_dict(self._metrics())
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="unknown"):
            metrics_from_dict(payload)

    def test_missing_field_rejected(self):
        payload = metrics_to_dict(self._metrics())
        del payload["makespan"]
        with pytest.raises(ValueError, match="missing"):
            metrics_from_dict(payload)


class TestAggregateTrials:
    def test_mean_and_std(self):
        def runner(seed: int) -> FigureSeries:
            return make_fig(values=(float(seed), float(seed) * 2))

        agg = aggregate_trials(runner, seeds=[1, 3])
        assert isinstance(agg, TrialAggregate)
        assert agg.num_trials == 2
        assert agg.mean_of("DSP", "makespan") == (2.0, 4.0)
        assert agg.std_of("DSP", "makespan") == (1.0, 2.0)
        assert agg.mean.meta["trials"] == 2

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trials(lambda s: make_fig(), seeds=[])

    def test_structure_mismatch_rejected(self):
        figs = {
            1: make_fig(),
            2: FigureSeries(
                figure="figX", x_label="jobs", x=(10, 30),
                series={"DSP": {"makespan": (1.0, 2.0)}},
            ),
        }
        with pytest.raises(ValueError, match="mismatched"):
            aggregate_trials(lambda s: figs[s], seeds=[1, 2])

    def test_real_runner_smoke(self):
        from repro.experiments import fig5_makespan

        agg = aggregate_trials(
            lambda seed: fig5_makespan("cluster", job_counts=(4,), scale=100.0, seed=seed),
            seeds=[1, 2],
        )
        assert len(agg.mean_of("DSP", "makespan")) == 1


class TestOrderStability:
    def test_always_holds(self):
        figs = [make_fig() for _ in range(3)]
        assert order_stability(figs, "makespan", ["DSP", "SRPT"]) == 1.0

    def test_never_holds(self):
        figs = [make_fig()]
        assert order_stability(figs, "makespan", ["SRPT", "DSP"]) == 0.0

    def test_tolerance_counts_ties(self):
        fig = FigureSeries(
            figure="f", x_label="x", x=(1, 2),
            series={"a": {"m": (1.02, 1.0)}, "b": {"m": (1.0, 1.0)}},
        )
        assert order_stability([fig], "m", ["a", "b"]) == 0.5
        assert order_stability([fig], "m", ["a", "b"], tolerance=0.05) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            order_stability([], "m", ["a"])
